/**
 * @file
 * Flattened structure-of-arrays image of a whole trace's
 * clock-independent draw work — the compute-once half of the
 * compute-once / retime-many sweep engine.
 *
 * A sweep (frequency scaling, design-point pathfinding, the DVFS
 * energy study) re-times the same draws under many GPU configs. The
 * per-draw DrawWork is clock-independent, so the sweep layer computes
 * it exactly once per trace: buildWorkTrace() walks the frames in
 * parallel (reusing the process-global draw-work memo cache) and lays
 * every DrawWork field out as one 64-byte-aligned column per field,
 * grouped by frame through a per-group offset table. The retiming
 * kernel (core/sweep.hh) then streams those columns for all draws ×
 * all configs in one cache-friendly pass.
 *
 * Rows are grouped into *groups* — frames for a full trace, subset
 * units for a subset work trace (built by core/sweep.cc) — and each
 * group's rows keep their submission order, so serial accumulation
 * over a group reproduces the per-frame cost chains of
 * GpuSimulator::simulateFrame bit for bit.
 *
 * Besides the raw DrawWork fields, four derived columns are
 * precomputed at build time: the L2 and DRAM byte totals (the sums
 * MemoryTraffic::totalL2Bytes/totalDramBytes would produce — same
 * addends, same order, config-independent, hence bit-identical to
 * recomputing them at every clock point) and the vertex/pixel
 * weighted-op products hoisted out of the per-config timing loop.
 *
 * A WorkTrace is bound to the *capacity* parameters of the config it
 * was built under (capacityKey); any config sharing that capacity
 * hash — every point of a clock sweep, throughput-only design
 * variants — can be retimed against it.
 */

#ifndef GWS_GPUSIM_WORK_TRACE_HH
#define GWS_GPUSIM_WORK_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/gpu_simulator.hh"

namespace gws {

/** SoA of per-draw clock-independent work, grouped by frame/unit. */
class WorkTrace
{
  public:
    /** Alignment of every column start, in bytes. */
    static constexpr std::size_t columnAlignment = 64;

    /** Empty work trace. */
    WorkTrace() = default;

    /**
     * Allocate for the given group sizes (rows per group) under a
     * capacity hash. Rows start zeroed; builders fill them with
     * setRow(). Intended for the build functions below and the
     * subset builder in core/sweep.cc.
     */
    WorkTrace(std::uint64_t capacity_key,
              const std::vector<std::size_t> &group_sizes);

    /** Scatter one DrawWork into row i of every column. */
    void setRow(std::size_t i, const DrawWork &work);

    /** Total rows (draws). */
    std::size_t drawCount() const { return rows; }

    /** Groups (frames of a trace, units of a subset). */
    std::size_t groupCount() const
    {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }

    /** First row of group g. */
    std::size_t groupBegin(std::size_t g) const { return offsets[g]; }

    /** One-past-last row of group g. */
    std::size_t groupEnd(std::size_t g) const { return offsets[g + 1]; }

    /** Hash of the capacity config the work was computed under. */
    std::uint64_t capacityKey() const { return capKey; }

    // --- raw DrawWork columns (aligned, length drawCount()) ----------
    const double *vertices() const { return col(0); }
    const double *primitives() const { return col(1); }
    const double *pixels() const { return col(2); }
    const double *vertexFetchBytes() const { return col(3); }
    const double *vsWeightedOps() const { return col(4); }
    const double *psWeightedOps() const { return col(5); }
    const double *ropPixels() const { return col(6); }
    const double *texSamples() const { return col(7); }
    const double *texL2FillBytes() const { return col(8); }
    const double *texDramBytes() const { return col(9); }
    const double *vertexDramBytes() const { return col(10); }
    const double *rtDramBytes() const { return col(11); }

    // --- derived columns (precomputed, bit-identical to recompute) ---
    /** MemoryTraffic::totalL2Bytes() of each row. */
    const double *l2Bytes() const { return col(12); }

    /** MemoryTraffic::totalDramBytes() of each row. */
    const double *dramBytes() const { return col(13); }

    /** vertices * vsWeightedOps of each row. */
    const double *vsOpsTotal() const { return col(14); }

    /** pixels * psWeightedOps of each row. */
    const double *psOpsTotal() const { return col(15); }

    /**
     * Reconstruct row i as a DrawWork for the naive A/B retiming path.
     * Timing-relevant fields only: the texture hit rates (which no
     * clock point reads) are left at their defaults.
     */
    DrawWork work(std::size_t i) const;

    /** Serial left-to-right sum of the DRAM column in row order. */
    double totalDramBytes() const;

    /**
     * Column-slab bytes a work trace with `rows` rows keeps resident
     * (all raw + derived columns, alignment padding included). The
     * estimate the streaming engine compares against the memory
     * budget when deciding whether a sweep must go out of core.
     */
    static std::size_t residentBytes(std::size_t rows);

  private:
    static constexpr std::size_t numColumns = 16;

    const double *col(std::size_t c) const
    {
        return storage.get() + c * stride;
    }

    double *mutableCol(std::size_t c) { return storage.get() + c * stride; }

    std::size_t rows = 0;
    std::size_t stride = 0;
    std::vector<std::size_t> offsets; // groupCount() + 1
    std::uint64_t capKey = 0;

    struct AlignedDelete
    {
        void operator()(double *p) const
        {
            ::operator delete[](p, std::align_val_t(columnAlignment));
        }
    };
    std::unique_ptr<double[], AlignedDelete> storage;
};

/**
 * Compute the whole trace's work under simulator's capacity config:
 * one group per frame, rows in submission order. Frames are priced in
 * parallel (one frame per chunk, like simulateTrace) through
 * GpuSimulator::computeDrawWork, so repeated draws hit the memo cache.
 * Build time and row count feed the runtime counters
 * (`--runtime-stats`).
 */
WorkTrace buildWorkTrace(const Trace &trace, const GpuSimulator &simulator);

} // namespace gws

#endif // GWS_GPUSIM_WORK_TRACE_HH
