/**
 * @file
 * Set-associative cache model with true-LRU replacement. Used for the
 * texture L1 and the GPU L2. The model is functional at line
 * granularity (tags only, no data) and collects hit/miss statistics;
 * timing is derived by the memory system from the statistics.
 */

#ifndef GWS_GPUSIM_CACHE_HH
#define GWS_GPUSIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace gws {

/** Geometry of a cache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 16 * 1024;

    /** Line size in bytes (power of two). */
    std::uint32_t lineBytes = 64;

    /** Associativity. */
    std::uint32_t ways = 4;

    /** Number of sets implied by the geometry (>= 1). */
    std::uint64_t sets() const;

    /**
     * A miniature cache with the same ways/line but capacity divided
     * by factor (floored at one set). Used for set-sampled simulation
     * of long access streams.
     */
    CacheConfig scaledDown(double factor) const;

    /** Equality over all fields. */
    bool operator==(const CacheConfig &other) const = default;
};

/** Hit/miss counters of one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;

    /** Misses (accesses - hits). */
    std::uint64_t misses() const { return accesses - hits; }

    /** Hit rate in [0, 1]; 1 when there were no accesses. */
    double hitRate() const;
};

/**
 * Functional set-associative LRU cache. Addresses are byte addresses;
 * the cache tracks residency at line granularity.
 */
class Cache
{
  public:
    /** Construct with the given geometry. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access one byte address; returns true on hit. On miss the line
     * is filled, evicting the set's LRU line if needed.
     */
    bool access(std::uint64_t address);

    /** True if the line holding address is resident (no side effect). */
    bool probe(std::uint64_t address) const;

    /** Statistics so far. */
    const CacheStats &stats() const { return statistics; }

    /** Drop all lines and reset statistics. */
    void reset();

    /** Geometry. */
    const CacheConfig &config() const { return geometry; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(std::uint64_t address) const;
    std::uint64_t tagOf(std::uint64_t address) const;

    CacheConfig geometry;
    std::uint64_t numSets;
    std::vector<Line> lines; // numSets x ways, row-major
    std::uint64_t useCounter = 0;
    CacheStats statistics;
};

} // namespace gws

#endif // GWS_GPUSIM_CACHE_HH
