/**
 * @file
 * The draw-call-level GPU performance model.
 *
 * Each draw flows through a pipeline of throughput resources:
 * command-processor setup, vertex fetch, vertex shading, rasterization,
 * pixel shading, texture filtering (backed by the simulated cache
 * hierarchy), ROP, the L2 data path, and DRAM. The pipeline is fully
 * overlapped, so a draw's time is its setup cost plus the time of its
 * slowest (bottleneck) stage. Core-domain stages scale with the core
 * clock; DRAM time scales with the memory clock only — which is what
 * gives the frequency-scaling experiments their non-trivial shape.
 *
 * The model is deliberately *per-draw pure*: a draw costs the same
 * simulated alone as inside its frame. That property is what makes
 * representative-subset simulation exact at the substrate level, so
 * any subsetting error measured by the experiments comes from the
 * methodology (clustering/phase detection), not from simulator
 * context effects.
 */

#ifndef GWS_GPUSIM_GPU_SIMULATOR_HH
#define GWS_GPUSIM_GPU_SIMULATOR_HH

#include <array>
#include <string>
#include <vector>

#include "gpusim/gpu_config.hh"
#include "gpusim/memory_system.hh"
#include "trace/trace.hh"

namespace gws {

/** Pipeline stages of the performance model. */
enum class Stage : std::uint8_t
{
    Setup = 0,
    VertexFetch,
    VertexShade,
    Raster,
    PixelShade,
    Texture,
    Rop,
    L2,
    Dram,
    NumStages,
};

/** Printable stage name. */
const char *toString(Stage stage);

/** Number of modeled stages. */
constexpr std::size_t numStages = static_cast<std::size_t>(Stage::NumStages);

/**
 * Draws per chunk when a frame prices its draws in parallel: one draw
 * costs roughly a microsecond to simulate, so this keeps chunks well
 * above the pool's per-task overhead while still splitting the
 * multi-hundred-draw frames the synthetic games produce.
 */
constexpr std::size_t drawGrain = 32;

/** Cost breakdown of one simulated draw call. */
struct DrawCost
{
    /** Per-stage occupancy time in nanoseconds. */
    std::array<double, numStages> stageNs{};

    /** Wall time of the draw: setup + slowest pipelined stage. */
    double totalNs = 0.0;

    /** The limiting stage. */
    Stage bottleneck = Stage::Setup;

    /** Memory traffic detail. */
    MemoryTraffic traffic;

    /** Time of one stage. */
    double ns(Stage s) const
    {
        return stageNs[static_cast<std::size_t>(s)];
    }
};

/** Cost summary of one simulated frame. */
struct FrameCost
{
    /** Frame index within the trace. */
    std::uint32_t frameIndex = 0;

    /** Per-draw wall times in submission order. */
    std::vector<double> drawNs;

    /** Sum of draw times plus the per-frame overhead. */
    double totalNs = 0.0;

    /** Per-stage time summed over draws (bottleneck stages only). */
    std::array<double, numStages> bottleneckNs{};

    /** How many draws bottlenecked on each stage. */
    std::array<std::uint64_t, numStages> bottleneckCount{};
};

/** Cost summary of a whole trace. */
struct TraceCost
{
    /** Per-frame costs in order. */
    std::vector<FrameCost> frames;

    /** Sum of frame times. */
    double totalNs = 0.0;

    /** Draw calls simulated. */
    std::uint64_t drawsSimulated = 0;

    /** Mean frame time in milliseconds. */
    double meanFrameMs() const;

    /** Frames per second implied by the mean frame time. */
    double fps() const;
};

/**
 * Clock-independent work of one draw: invocation counts, weighted
 * shader ops, and memory traffic. Everything here depends on the
 * architecture's *capacities* (cache geometry) but on no clock, so a
 * frequency sweep can compute the work once and re-time it per clock
 * point — the fast path FrequencyScalingStudy uses.
 */
struct DrawWork
{
    double vertices = 0.0;
    double primitives = 0.0;
    double pixels = 0.0;
    double vertexFetchBytes = 0.0;
    double vsWeightedOps = 0.0;
    double psWeightedOps = 0.0;
    double ropPixels = 0.0;
    MemoryTraffic traffic;
};

/** The GPU performance simulator bound to one architecture config. */
class GpuSimulator
{
  public:
    /** Construct for a design point; validates the config. */
    explicit GpuSimulator(GpuConfig config);

    /** The design point being simulated. */
    const GpuConfig &config() const { return cfg; }

    /**
     * Compute the clock-independent work of one draw. Memoized in the
     * process-global draw-work cache (see draw_work_cache.hh) keyed by
     * the draw's resolved content and this config's capacity hash;
     * a hit returns the exact value a fresh computation produced.
     */
    DrawWork computeDrawWork(const Trace &trace,
                             const DrawCall &draw) const;

    /** Price previously-computed work at this config's clocks. */
    DrawCost timeDrawWork(const DrawWork &work) const;

    /** Simulate one draw in isolation. */
    DrawCost simulateDraw(const Trace &trace, const DrawCall &draw) const;

    /** Simulate one frame (all draws plus frame overhead). */
    FrameCost simulateFrame(const Trace &trace, const Frame &frame) const;

    /** Simulate a whole trace. */
    TraceCost simulateTrace(const Trace &trace) const;

  private:
    /** Weighted SIMD ops per invocation of a shader. */
    double weightedOps(const InstructionMix &mix) const;

    /** The uncached draw-work computation computeDrawWork memoizes. */
    DrawWork computeDrawWorkUncached(const Trace &trace,
                                     const DrawCall &draw) const;

    GpuConfig cfg;
    MemorySystem memory;

    /** Hash of the capacity parameters, precomputed once per config. */
    std::uint64_t capacityKey = 0;
};

} // namespace gws

#endif // GWS_GPUSIM_GPU_SIMULATOR_HH
