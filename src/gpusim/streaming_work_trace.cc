#include "gpusim/streaming_work_trace.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <unistd.h>

#include "gpusim/draw_work_cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "trace/wtrc_io.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace gws {

namespace {

std::atomic<std::size_t> g_budget_override{0};

/** Stream metrics, registered once on first use. */
struct StreamMetrics
{
    obs::Counter &chunksBuilt;
    obs::Counter &chunksLoaded;
    obs::Counter &spilledBytes;
    obs::Counter &loadedBytes;
    obs::Counter &passes;
    obs::Histogram &chunkRows;
    obs::Gauge &budgetGauge;
};

StreamMetrics &
streamMetrics()
{
    static StreamMetrics m{
        obs::metricsRegistry().counter("gws.stream.chunks_built"),
        obs::metricsRegistry().counter("gws.stream.chunks_loaded"),
        obs::metricsRegistry().counter("gws.stream.spilled_bytes"),
        obs::metricsRegistry().counter("gws.stream.loaded_bytes"),
        obs::metricsRegistry().counter("gws.stream.passes"),
        obs::metricsRegistry().histogram("gws.stream.chunk_rows"),
        obs::metricsRegistry().gauge("gws.stream.mem_budget_bytes"),
    };
    return m;
}

/** A fresh spill path under $TMPDIR (or /tmp), unique per instance. */
std::string
defaultSpillPath()
{
    static std::atomic<std::uint64_t> seq{0};
    const char *dir = std::getenv("TMPDIR");
    std::string path = (dir && *dir) ? dir : "/tmp";
    path += "/gws-wtrc-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq.fetch_add(1)) + ".wtrc";
    return path;
}

/** Raw-column pointers of a chunk, in wtrc column order. */
void
rawColumns(const WorkTrace &wt, const double *cols[wtrcColumnCount])
{
    cols[0] = wt.vertices();
    cols[1] = wt.primitives();
    cols[2] = wt.pixels();
    cols[3] = wt.vertexFetchBytes();
    cols[4] = wt.vsWeightedOps();
    cols[5] = wt.psWeightedOps();
    cols[6] = wt.ropPixels();
    cols[7] = wt.texSamples();
    cols[8] = wt.texL2FillBytes();
    cols[9] = wt.texDramBytes();
    cols[10] = wt.vertexDramBytes();
    cols[11] = wt.rtDramBytes();
}

/** Rebuild row `i` of `wt` from a decoded chunk's raw columns. */
DrawWork
workFromChunk(const WtrcChunk &chunk, std::size_t i)
{
    DrawWork w;
    w.vertices = chunk.column(0)[i];
    w.primitives = chunk.column(1)[i];
    w.pixels = chunk.column(2)[i];
    w.vertexFetchBytes = chunk.column(3)[i];
    w.vsWeightedOps = chunk.column(4)[i];
    w.psWeightedOps = chunk.column(5)[i];
    w.ropPixels = chunk.column(6)[i];
    w.traffic.texSamples = static_cast<std::uint64_t>(chunk.column(7)[i]);
    w.traffic.texL2FillBytes = chunk.column(8)[i];
    w.traffic.texDramBytes = chunk.column(9)[i];
    w.traffic.vertexDramBytes = chunk.column(10)[i];
    w.traffic.rtDramBytes = chunk.column(11)[i];
    return w;
}

} // namespace

std::size_t
memBudgetBytes()
{
    const std::size_t over = g_budget_override.load(std::memory_order_relaxed);
    if (over != 0)
        return over;
    static const std::size_t env =
        envSize("GWS_MEM_BUDGET", defaultMemBudgetBytes);
    return env != 0 ? env : defaultMemBudgetBytes;
}

void
setMemBudgetBytes(std::size_t bytes)
{
    g_budget_override.store(bytes, std::memory_order_relaxed);
}

bool
shouldStreamWorkTrace(std::size_t draws)
{
    return WorkTrace::residentBytes(draws) > memBudgetBytes();
}

std::size_t
traceDrawCount(const Trace &trace)
{
    std::size_t draws = 0;
    for (std::size_t f = 0; f < trace.frameCount(); ++f)
        draws += trace.frame(f).drawCount();
    return draws;
}

StreamingWorkTrace::StreamingWorkTrace(const Trace &trace,
                                       const GpuSimulator &simulator,
                                       StreamOptions options)
    : src(trace), sim(simulator), opt(std::move(options))
{
    capKey = capacityConfigHash(sim.config());
    budget = opt.memBudgetBytes != 0 ? opt.memBudgetBytes : memBudgetBytes();
    streamMetrics().budgetGauge.set(static_cast<double>(budget));
    spillFile = opt.spillPath.empty() ? defaultSpillPath() : opt.spillPath;

    // Half the budget bounds the resident chunk columns; the other
    // half is headroom for the consumer's per-chunk slabs and the IO
    // buffer. Frames are packed greedily: a chunk closes when the
    // next frame would push it past the row budget, and a frame
    // larger than the budget gets a chunk of its own (boundaries are
    // never allowed to split a group).
    std::size_t row_budget = 1;
    while (WorkTrace::residentBytes(row_budget + 1) <= budget / 2)
        ++row_budget;

    ChunkLayout current;
    for (std::size_t f = 0; f < src.frameCount(); ++f) {
        const std::size_t draws = src.frame(f).drawCount();
        if (current.groups > 0 && current.rows + draws > row_budget) {
            layout.push_back(current);
            current = ChunkLayout{current.firstGroup + current.groups, 0, 0};
        }
        ++current.groups;
        current.rows += draws;
        ++totalGroups;
        totalRows += draws;
    }
    if (current.groups > 0)
        layout.push_back(current);
    for (const ChunkLayout &c : layout)
        maxRows = std::max(maxRows, c.rows);
}

StreamingWorkTrace::~StreamingWorkTrace()
{
    if (built && !opt.keepSpill)
        std::remove(spillFile.c_str());
}

std::vector<std::size_t>
StreamingWorkTrace::chunkGroupSizes(std::size_t ci) const
{
    const ChunkLayout &c = layout[ci];
    std::vector<std::size_t> sizes;
    sizes.reserve(c.groups);
    for (std::size_t g = 0; g < c.groups; ++g)
        sizes.push_back(src.frame(c.firstGroup + g).drawCount());
    return sizes;
}

void
StreamingWorkTrace::forEachChunk(const ChunkFn &fn)
{
    if (!built)
        buildPass(fn);
    else
        loadPass(fn);
    ++passes;
    streamMetrics().passes.increment();
}

void
StreamingWorkTrace::buildPass(const ChunkFn &fn)
{
    ScopedRegion region("stream.buildPass");
    const std::uint64_t t0 = runtime_detail::nowNs();

    std::ofstream out(spillFile,
                      std::ios::binary | std::ios::trunc | std::ios::out);
    if (!out)
        throw WtrcError("cannot open wtrc spill file '" + spillFile + "'");
    WtrcWriter writer(out, capKey);

    StreamMetrics &m = streamMetrics();
    for (std::size_t ci = 0; ci < layout.size(); ++ci) {
        obs::SpanScope chunk_span("stream.chunk");
        const ChunkLayout &c = layout[ci];
        WorkTrace wt(capKey, chunkGroupSizes(ci));
        parallelFor(0, c.groups, 1, [&](std::size_t g) {
            const Frame &frame = src.frame(c.firstGroup + g);
            std::size_t row = wt.groupBegin(g);
            for (const DrawCall &draw : frame.draws())
                wt.setRow(row++, sim.computeDrawWork(src, draw));
        });

        // The DRAM accumulator is carried across chunk boundaries in
        // row order — the same left-to-right addition chain as the
        // flattened trace's totalDramBytes(), hence bit-identical.
        const double *dram = wt.dramBytes();
        for (std::size_t i = 0; i < c.rows; ++i)
            dramTotal += dram[i];

        {
            obs::SpanScope spill_span("stream.spill");
            std::vector<std::uint32_t> sizes;
            sizes.reserve(c.groups);
            for (std::size_t g = 0; g < c.groups; ++g)
                sizes.push_back(static_cast<std::uint32_t>(
                    wt.groupEnd(g) - wt.groupBegin(g)));
            const double *cols[wtrcColumnCount];
            rawColumns(wt, cols);
            const std::uint64_t before = writer.chunkBytesWritten();
            writer.appendChunk(sizes, cols, c.rows);
            m.spilledBytes.add(writer.chunkBytesWritten() - before);
        }
        m.chunksBuilt.increment();
        m.chunkRows.record(c.rows);

        fn(ci, c.firstGroup, wt);
    }
    writer.finish();
    built = true;

    runtime_detail::noteWorkTraceBuild(totalRows,
                                       runtime_detail::nowNs() - t0);
}

void
StreamingWorkTrace::loadPass(const ChunkFn &fn)
{
    ScopedRegion region("stream.loadPass");

    std::ifstream in(spillFile, std::ios::binary | std::ios::in);
    if (!in)
        throw WtrcError("cannot reopen wtrc spill file '" + spillFile + "'");
    WtrcReader reader(in);
    if (reader.capacityKey() != capKey ||
        reader.totalRows() != totalRows ||
        reader.totalGroups() != totalGroups ||
        reader.chunkCount() != layout.size())
        throw WtrcError("wtrc spill file '" + spillFile +
                        "' does not match the stream that wrote it");

    StreamMetrics &m = streamMetrics();
    for (std::size_t ci = 0; ci < layout.size(); ++ci) {
        obs::SpanScope chunk_span("stream.chunk");
        const ChunkLayout &c = layout[ci];
        WtrcChunk chunk;
        {
            obs::SpanScope load_span("stream.load");
            chunk = reader.readChunk();
        }
        if (chunk.rows != c.rows || chunk.groupSizes.size() != c.groups)
            throw WtrcError("wtrc spill chunk " + std::to_string(ci) +
                            " does not match the planned layout");

        std::vector<std::size_t> sizes(chunk.groupSizes.begin(),
                                       chunk.groupSizes.end());
        WorkTrace wt(capKey, sizes);
        // setRow re-derives the four computed columns with the exact
        // build-time expressions on bit-identical raw inputs.
        parallelFor(0, c.rows, 8192, [&](std::size_t i) {
            wt.setRow(i, workFromChunk(chunk, i));
        });
        m.chunksLoaded.increment();
        m.loadedBytes.add(chunk.rows * wtrcColumnCount * sizeof(double));

        fn(ci, c.firstGroup, wt);
    }
    reader.finish();
}

double
StreamingWorkTrace::totalDramBytes()
{
    if (!built)
        forEachChunk([](std::size_t, std::size_t, const WorkTrace &) {});
    return dramTotal;
}

} // namespace gws
