#include "gpusim/power.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gws {

double
PowerConfig::voltageAt(double core_ghz) const
{
    GWS_ASSERT(core_ghz > 0.0, "non-positive clock: ", core_ghz);
    return std::max(minVoltage,
                    voltageAt1Ghz + voltageSlopePerGhz * (core_ghz - 1.0));
}

double
PowerConfig::dynamicWatts(double core_ghz) const
{
    const double v = voltageAt(core_ghz);
    // nF * V^2 * GHz: 1e-9 F and 1e9 Hz cancel, yielding watts.
    return switchedCapacitanceNf * v * v * core_ghz;
}

double
PowerConfig::leakageWatts(double core_ghz) const
{
    return leakagePerVolt * voltageAt(core_ghz);
}

void
PowerConfig::validate() const
{
    GWS_ASSERT(voltageAt1Ghz > 0.0, "voltage must be positive");
    GWS_ASSERT(voltageSlopePerGhz >= 0.0, "voltage slope negative");
    GWS_ASSERT(minVoltage > 0.0 && minVoltage <= voltageAt1Ghz,
               "bad minimum voltage");
    GWS_ASSERT(switchedCapacitanceNf > 0.0, "capacitance must be "
               "positive");
    GWS_ASSERT(leakagePerVolt >= 0.0, "leakage negative");
    GWS_ASSERT(dramPicojoulesPerByte >= 0.0, "DRAM energy negative");
    GWS_ASSERT(boardWatts >= 0.0, "board power negative");
}

double
EnergyReport::totalJ() const
{
    return dynamicJ + leakageJ + dramJ + boardJ;
}

double
EnergyReport::averageWatts() const
{
    return seconds > 0.0 ? totalJ() / seconds : 0.0;
}

double
EnergyReport::energyDelay() const
{
    return totalJ() * seconds;
}

EnergyReport
estimateEnergy(const WorkloadEstimate &workload, const GpuConfig &config,
               const PowerConfig &power)
{
    power.validate();
    GWS_ASSERT(workload.ns >= 0.0 && workload.dramBytes >= 0.0,
               "negative workload estimate");
    EnergyReport report;
    report.seconds = workload.ns * 1e-9;
    report.dynamicJ =
        power.dynamicWatts(config.coreClockGhz) * report.seconds;
    report.leakageJ =
        power.leakageWatts(config.coreClockGhz) * report.seconds;
    report.dramJ = workload.dramBytes * power.dramPicojoulesPerByte *
                   1e-12;
    report.boardJ = power.boardWatts * report.seconds;
    return report;
}

} // namespace gws
