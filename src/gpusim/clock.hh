/**
 * @file
 * Clock domains. The simulator has two: the GPU core domain (shader
 * cores, rasterizer, texture units, ROPs, L2) and the memory domain
 * (DRAM). Keeping them separate is what makes the frequency-scaling
 * experiments meaningful: scaling the core clock leaves memory-bound
 * time unchanged.
 */

#ifndef GWS_GPUSIM_CLOCK_HH
#define GWS_GPUSIM_CLOCK_HH

namespace gws {

/** A fixed-frequency clock domain. */
class ClockDomain
{
  public:
    /** Construct with a frequency in GHz (> 0). */
    explicit ClockDomain(double ghz);

    /** Frequency in GHz. */
    double frequencyGhz() const { return ghz; }

    /** Period in nanoseconds. */
    double periodNs() const { return 1.0 / ghz; }

    /** Convert a (possibly fractional) cycle count to nanoseconds. */
    double cyclesToNs(double cycles) const { return cycles / ghz; }

    /** Convert nanoseconds to cycles. */
    double nsToCycles(double ns) const { return ns * ghz; }

    /** A domain scaled by the given factor (for frequency sweeps). */
    ClockDomain scaled(double factor) const;

  private:
    double ghz;
};

} // namespace gws

#endif // GWS_GPUSIM_CLOCK_HH
