/**
 * @file
 * GPU architecture configuration — the "design point" that architecture
 * pathfinding sweeps. Every throughput, clock, and cache parameter the
 * performance model consumes lives here, plus a set of named presets
 * used by the pathfinding experiments.
 */

#ifndef GWS_GPUSIM_GPU_CONFIG_HH
#define GWS_GPUSIM_GPU_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/cache.hh"

namespace gws {

/** One GPU architecture design point. */
struct GpuConfig
{
    /** Preset / design-point name. */
    std::string name = "baseline";

    // --- clock domains -------------------------------------------------
    /** Core (shader/raster/tex/ROP/L2) clock in GHz. */
    double coreClockGhz = 1.0;

    /** Memory (DRAM) clock in GHz. */
    double memClockGhz = 2.0;

    // --- shader core array ----------------------------------------------
    /** Number of unified shader cores. */
    std::uint32_t numCores = 8;

    /** SIMD lanes per core. */
    std::uint32_t simdWidth = 16;

    /** Core-cycles charged per special-function op (vs 1 for ALU). */
    double specialOpWeight = 4.0;

    // --- fixed-function rates (per core cycle, whole chip) --------------
    /** Vertex attribute fetch bytes per cycle. */
    double vertexFetchBytesPerCycle = 64.0;

    /** Primitives set up per cycle. */
    double rasterPrimsPerCycle = 1.0;

    /** Pixels rasterized (coverage-tested) per cycle. */
    double rasterPixelsPerCycle = 32.0;

    /** Bilinear texture samples filtered per cycle (all units). */
    double texSamplesPerCycle = 8.0;

    /** Pixels blended/written by the ROPs per cycle. */
    double ropPixelsPerCycle = 16.0;

    // --- memory hierarchy ------------------------------------------------
    /** Texture L1 geometry (aggregated over units). */
    CacheConfig texL1{16 * 1024, 64, 4};

    /** Chip-wide L2 geometry. */
    CacheConfig l2{1024 * 1024, 64, 16};

    /** L2 bandwidth in bytes per core cycle. */
    double l2BytesPerCycle = 64.0;

    /** DRAM bus width in bytes per memory cycle. */
    double dramBusBytesPerCycle = 32.0;

    /**
     * Fraction of render-target / depth traffic that reaches DRAM
     * (the rest is absorbed by ROP caches and compression).
     */
    double rtTrafficDramFraction = 0.5;

    // --- overheads -------------------------------------------------------
    /** Core cycles of command-processor setup per draw. */
    double drawSetupCycles = 600.0;

    /** Fixed per-frame overhead (present, flush) in microseconds. */
    double frameOverheadUs = 20.0;

    // --- simulation fidelity ----------------------------------------------
    /** Cap on simulated texture accesses per draw (set-sampling). */
    std::uint64_t maxSampledTexAccesses = 512;

    /** Total SIMD ALU operations issued per core cycle. */
    double opsPerCycle() const
    {
        return static_cast<double>(numCores) * simdWidth;
    }

    /** DRAM bandwidth in bytes per nanosecond (= GB/s). */
    double dramBandwidthBytesPerNs() const
    {
        return dramBusBytesPerCycle * memClockGhz;
    }

    /** Copy with the core clock scaled by factor (memory unchanged). */
    GpuConfig withCoreClockScale(double factor) const;

    /** Copy with a different name. */
    GpuConfig named(std::string new_name) const;

    /** Panics if any parameter is non-physical. */
    void validate() const;
};

/**
 * Named architecture presets used by the pathfinding experiments:
 *  - baseline : the reference design point
 *  - wide     : 2x shader cores (compute-heavy design)
 *  - fastmem  : 1.6x memory clock (bandwidth-heavy design)
 *  - bigcache : 4x L2 (capacity-heavy design)
 *  - mobile   : halved everything (power-constrained design)
 * Panics on an unknown name; see gpuPresetNames().
 */
GpuConfig makeGpuPreset(const std::string &name);

/** Names accepted by makeGpuPreset(), in canonical order. */
std::vector<std::string> gpuPresetNames();

} // namespace gws

#endif // GWS_GPUSIM_GPU_CONFIG_HH
