/**
 * @file
 * Process-global memo cache of clock-independent draw work.
 *
 * The performance model is per-draw pure: DrawWork is a function of
 * the draw call, the resources and shaders it binds, and the
 * *capacity* parameters of the GpuConfig (cache geometry, sampling
 * cap, op weights) — never of any clock. The experiment harnesses
 * re-simulate the same draws many times (subset vs baseline vs ground
 * truth, every point of a frequency sweep, every restart of a
 * pathfinding study), so memoizing DrawWork by a content hash of
 * exactly those inputs turns each repeat into a table lookup while
 * returning bit-identical results by construction: a hit returns the
 * value a fresh simulation produced.
 *
 * The key hashes the *resolved* inputs (shader instruction mixes,
 * texture byte sizes, render-target depth) rather than trace-local
 * ids, so it is valid across traces, trace copies, and subset
 * extractions. Keys are 128-bit (two independently seeded mixes of
 * the same words); a collision needs ~2^64 distinct draws.
 *
 * Control: GWS_DRAW_CACHE=0 disables the cache; GWS_DRAW_CACHE_ENTRIES
 * caps its size (default 262144 entries, ~50 MB). When full the cache
 * stops inserting but keeps serving hits. Hit/miss totals feed the
 * runtime counters (`--runtime-stats`).
 */

#ifndef GWS_GPUSIM_DRAW_WORK_CACHE_HH
#define GWS_GPUSIM_DRAW_WORK_CACHE_HH

#include <cstdint>
#include <cstddef>

#include "gpusim/gpu_config.hh"
#include "trace/trace.hh"

namespace gws {

struct DrawWork;

/** 128-bit content key of one (draw, capacity-config) pair. */
struct DrawWorkKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool operator==(const DrawWorkKey &other) const = default;
};

/**
 * Hash of the capacity (clock-independent) GpuConfig parameters that
 * DrawWork depends on. Configs differing only in clocks or throughput
 * rates share draw work — that sharing is what makes frequency sweeps
 * hit the cache across design points.
 */
std::uint64_t capacityConfigHash(const GpuConfig &config);

/**
 * Content key of one draw under a capacity hash: the draw's own
 * fields plus the resolved shader mixes and resource descriptors.
 */
DrawWorkKey drawWorkKey(const Trace &trace, const DrawCall &draw,
                        std::uint64_t capacityHash);

/** True unless GWS_DRAW_CACHE=0 disabled the cache at startup. */
bool drawWorkCacheEnabled();

/** Look up a memoized DrawWork; true and fills *out on a hit. */
bool drawWorkCacheLookup(const DrawWorkKey &key, DrawWork *out);

/** Memoize a freshly computed DrawWork (no-op when full/disabled). */
void drawWorkCacheInsert(const DrawWorkKey &key, const DrawWork &work);

/** Entries currently cached. */
std::size_t drawWorkCacheSize();

/** Drop every cached entry (tests and long-lived servers). */
void drawWorkCacheClear();

} // namespace gws

#endif // GWS_GPUSIM_DRAW_WORK_CACHE_HH
