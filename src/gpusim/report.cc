#include "gpusim/report.hh"

#include "util/logging.hh"

namespace gws {

namespace {

/** Raw (unnormalized) accumulation helper. */
struct RawProfile
{
    std::array<double, numStages> ns{};
    std::array<std::uint64_t, numStages> draws{};
};

BottleneckProfile
normalize(const RawProfile &raw)
{
    BottleneckProfile p;
    double total_ns = 0.0;
    std::uint64_t total_draws = 0;
    for (std::size_t s = 0; s < numStages; ++s) {
        total_ns += raw.ns[s];
        total_draws += raw.draws[s];
    }
    p.draws = total_draws;
    p.totalNs = total_ns;
    for (std::size_t s = 0; s < numStages; ++s) {
        p.drawFraction[s] =
            total_draws ? static_cast<double>(raw.draws[s]) /
                              static_cast<double>(total_draws)
                        : 0.0;
        p.timeFraction[s] = total_ns > 0.0 ? raw.ns[s] / total_ns : 0.0;
    }
    return p;
}

} // namespace

Stage
BottleneckProfile::dominant() const
{
    std::size_t best = 0;
    for (std::size_t s = 1; s < numStages; ++s) {
        if (timeFraction[s] > timeFraction[best])
            best = s;
    }
    return static_cast<Stage>(best);
}

double
BottleneckProfile::memoryBoundTimeFraction() const
{
    return timeShare(Stage::Dram);
}

BottleneckProfile
profileFrame(const FrameCost &frame)
{
    RawProfile raw;
    for (std::size_t s = 0; s < numStages; ++s) {
        raw.ns[s] = frame.bottleneckNs[s];
        raw.draws[s] = frame.bottleneckCount[s];
    }
    return normalize(raw);
}

BottleneckProfile
profileTrace(const GpuSimulator &simulator, const Trace &trace)
{
    RawProfile raw;
    for (const auto &frame : trace.frames()) {
        const FrameCost fc = simulator.simulateFrame(trace, frame);
        for (std::size_t s = 0; s < numStages; ++s) {
            raw.ns[s] += fc.bottleneckNs[s];
            raw.draws[s] += fc.bottleneckCount[s];
        }
    }
    return normalize(raw);
}

BottleneckProfile
merge(const BottleneckProfile &a, const BottleneckProfile &b)
{
    RawProfile raw;
    for (std::size_t s = 0; s < numStages; ++s) {
        raw.ns[s] = a.timeFraction[s] * a.totalNs +
                    b.timeFraction[s] * b.totalNs;
        const double a_draws =
            a.drawFraction[s] * static_cast<double>(a.draws);
        const double b_draws =
            b.drawFraction[s] * static_cast<double>(b.draws);
        raw.draws[s] = static_cast<std::uint64_t>(
            a_draws + b_draws + 0.5);
    }
    return normalize(raw);
}

} // namespace gws
