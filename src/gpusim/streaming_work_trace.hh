/**
 * @file
 * Out-of-core streaming counterpart of buildWorkTrace(): the bounded
 * resident window behind the fused build→retime→reduce sweep path.
 *
 * A multi-million-draw corpus flattened by buildWorkTrace() wants
 * ~128 bytes of resident column data per draw — past the memory
 * budget, the sweep engine must stop materialising the whole SoA
 * image. StreamingWorkTrace cuts the trace into *frame-aligned
 * chunks* sized to roughly half the budget (the other half is
 * headroom for per-chunk sweep slabs and IO buffers) and hands each
 * chunk to the caller as an ordinary in-memory WorkTrace:
 *
 *  - the first pass *builds* each chunk through the draw-work memo
 *    cache (same parallel per-frame fan-out as buildWorkTrace),
 *    accumulates the global DRAM total serially in row order, and
 *    spills the twelve raw columns to a `gws.wtrc.v1` container
 *    (trace/wtrc_io.hh);
 *  - every later pass re-loads the chunks from the spill file,
 *    recomputing the four derived columns through WorkTrace::setRow —
 *    the exact build-time expressions on bit-identical inputs, so a
 *    reloaded chunk is indistinguishable from the chunk that was
 *    spilled.
 *
 * Chunk boundaries never split a group, and chunks arrive in
 * ascending group order, so a consumer that reduces groups in index
 * order (core/sweep.cc retimeAllStreamed) reproduces the in-memory
 * engine's accumulation order — and therefore its results — bit for
 * bit, at any chunk size and any thread count.
 *
 * The budget comes from `GWS_MEM_BUDGET` (bytes, checked envSize
 * parser; default 256 MiB) or the programmatic override behind the
 * benches' `--mem-budget` flag. shouldStreamWorkTrace() is the
 * auto-selection predicate the studies use: stream exactly when the
 * flattened trace would not fit the budget.
 */

#ifndef GWS_GPUSIM_STREAMING_WORK_TRACE_HH
#define GWS_GPUSIM_STREAMING_WORK_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpusim/work_trace.hh"

namespace gws {

/** Default out-of-core memory budget when GWS_MEM_BUDGET is unset. */
constexpr std::size_t defaultMemBudgetBytes = 256u << 20;

/**
 * The effective memory budget in bytes: the programmatic override
 * (setMemBudgetBytes) when set, else GWS_MEM_BUDGET (read once
 * through the checked envSize parser), else the 256 MiB default.
 * A zero budget is meaningless and resolves to the default.
 */
std::size_t memBudgetBytes();

/**
 * Install a process-wide budget override (the `--mem-budget` flag);
 * 0 clears it and returns control to the environment knob.
 */
void setMemBudgetBytes(std::size_t bytes);

/**
 * Auto-selection predicate: true when a flattened work trace of
 * `draws` rows (WorkTrace::residentBytes) would exceed the budget,
 * i.e. when a sweep should take the streamed path.
 */
bool shouldStreamWorkTrace(std::size_t draws);

/** Total draws across all frames (the auto-selection input). */
std::size_t traceDrawCount(const Trace &trace);

/** Knobs for one StreamingWorkTrace (tests and benches). */
struct StreamOptions
{
    /** Per-instance budget override in bytes; 0 = memBudgetBytes(). */
    std::size_t memBudgetBytes = 0;

    /** Spill file path; empty = a fresh file under $TMPDIR (or /tmp). */
    std::string spillPath;

    /** Keep the spill file on destruction (default: delete it). */
    bool keepSpill = false;
};

/**
 * Bounded-window streaming view of a trace's work. The chunk layout
 * (which frames land in which chunk) is fixed at construction; the
 * expensive work — building, spilling, re-loading — happens lazily
 * inside forEachChunk(). The referenced Trace and GpuSimulator must
 * outlive the stream.
 */
class StreamingWorkTrace
{
  public:
    /** Callback: (chunk index, global index of first group, chunk). */
    using ChunkFn =
        std::function<void(std::size_t, std::size_t, const WorkTrace &)>;

    /** Plan the chunk layout for `trace` under `simulator`'s config. */
    StreamingWorkTrace(const Trace &trace, const GpuSimulator &simulator,
                       StreamOptions options = {});

    /** Deletes the spill file unless StreamOptions::keepSpill. */
    ~StreamingWorkTrace();

    StreamingWorkTrace(const StreamingWorkTrace &) = delete;
    StreamingWorkTrace &operator=(const StreamingWorkTrace &) = delete;

    /**
     * Run `fn` over every chunk in order. The first call builds and
     * spills (fused with the callback — the chunk is visited while
     * resident, before the window moves on); later calls re-load from
     * the spill file. At most one chunk's WorkTrace is alive at a
     * time.
     */
    void forEachChunk(const ChunkFn &fn);

    /**
     * Serial row-order sum of the DRAM column across the whole trace,
     * bit-identical to WorkTrace::totalDramBytes() of the flattened
     * image (the accumulator is carried across chunk boundaries, not
     * re-associated per chunk). Triggers the build pass if it has not
     * run yet.
     */
    double totalDramBytes();

    /** Capacity hash the work is computed under. */
    std::uint64_t capacityKey() const { return capKey; }

    /** Total draws across all chunks. */
    std::size_t drawCount() const { return totalRows; }

    /** Total groups (frames) across all chunks. */
    std::size_t groupCount() const { return totalGroups; }

    /** Number of planned chunks. */
    std::size_t chunkCount() const { return layout.size(); }

    /** Rows of the largest planned chunk (the resident high-water). */
    std::size_t maxChunkRows() const { return maxRows; }

    /** Global index of chunk `ci`'s first group. */
    std::size_t chunkFirstGroup(std::size_t ci) const
    {
        return layout[ci].firstGroup;
    }

    /** Groups in chunk `ci`. */
    std::size_t chunkGroupCount(std::size_t ci) const
    {
        return layout[ci].groups;
    }

    /** Rows in chunk `ci`. */
    std::size_t chunkRows(std::size_t ci) const
    {
        return layout[ci].rows;
    }

    /** Effective budget this stream was planned under, in bytes. */
    std::size_t budgetBytes() const { return budget; }

    /** Spill file path (exists only after the first pass). */
    const std::string &spillFilePath() const { return spillFile; }

    /** Passes completed (build pass included). */
    std::size_t passCount() const { return passes; }

  private:
    struct ChunkLayout
    {
        std::size_t firstGroup = 0;
        std::size_t groups = 0;
        std::size_t rows = 0;
    };

    /** First pass: fused build + DRAM accumulate + spill + visit. */
    void buildPass(const ChunkFn &fn);

    /** Later passes: re-load chunks from the spill file + visit. */
    void loadPass(const ChunkFn &fn);

    /** Group sizes of chunk `ci` as WorkTrace wants them. */
    std::vector<std::size_t> chunkGroupSizes(std::size_t ci) const;

    const Trace &src;
    const GpuSimulator &sim;
    StreamOptions opt;
    std::uint64_t capKey = 0;
    std::size_t budget = 0;
    std::vector<ChunkLayout> layout;
    std::size_t totalRows = 0;
    std::size_t totalGroups = 0;
    std::size_t maxRows = 0;
    std::string spillFile;
    bool built = false;
    double dramTotal = 0.0;
    std::size_t passes = 0;
};

} // namespace gws

#endif // GWS_GPUSIM_STREAMING_WORK_TRACE_HH
