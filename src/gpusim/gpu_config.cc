#include "gpusim/gpu_config.hh"

#include "util/logging.hh"

namespace gws {

GpuConfig
GpuConfig::withCoreClockScale(double factor) const
{
    GWS_ASSERT(factor > 0.0, "clock scale must be positive: ", factor);
    GpuConfig out = *this;
    out.coreClockGhz *= factor;
    return out;
}

GpuConfig
GpuConfig::named(std::string new_name) const
{
    GpuConfig out = *this;
    out.name = std::move(new_name);
    return out;
}

void
GpuConfig::validate() const
{
    GWS_ASSERT(coreClockGhz > 0.0, "core clock must be positive");
    GWS_ASSERT(memClockGhz > 0.0, "memory clock must be positive");
    GWS_ASSERT(numCores >= 1, "need at least one shader core");
    GWS_ASSERT(simdWidth >= 1, "need at least one SIMD lane");
    GWS_ASSERT(specialOpWeight >= 1.0, "special ops cannot be cheaper "
               "than ALU ops");
    GWS_ASSERT(vertexFetchBytesPerCycle > 0.0, "vertex fetch rate");
    GWS_ASSERT(rasterPrimsPerCycle > 0.0, "raster prim rate");
    GWS_ASSERT(rasterPixelsPerCycle > 0.0, "raster pixel rate");
    GWS_ASSERT(texSamplesPerCycle > 0.0, "texture sample rate");
    GWS_ASSERT(ropPixelsPerCycle > 0.0, "ROP rate");
    GWS_ASSERT(l2BytesPerCycle > 0.0, "L2 bandwidth");
    GWS_ASSERT(dramBusBytesPerCycle > 0.0, "DRAM bus width");
    GWS_ASSERT(rtTrafficDramFraction >= 0.0 && rtTrafficDramFraction <= 1.0,
               "RT DRAM fraction out of [0,1]");
    GWS_ASSERT(drawSetupCycles >= 0.0, "draw setup cycles");
    GWS_ASSERT(frameOverheadUs >= 0.0, "frame overhead");
    GWS_ASSERT(maxSampledTexAccesses >= 16,
               "need at least 16 sampled accesses");
    GWS_ASSERT(texL1.sizeBytes >= texL1.lineBytes * texL1.ways,
               "texture L1 smaller than one set");
    GWS_ASSERT(l2.sizeBytes >= l2.lineBytes * l2.ways,
               "L2 smaller than one set");
}

GpuConfig
makeGpuPreset(const std::string &name)
{
    GpuConfig cfg;
    cfg.name = name;
    if (name == "baseline")
        return cfg;
    if (name == "wide") {
        cfg.numCores = 16;
        cfg.texSamplesPerCycle = 16.0;
        return cfg;
    }
    if (name == "fastmem") {
        cfg.memClockGhz = 3.2;
        return cfg;
    }
    if (name == "bigcache") {
        cfg.l2.sizeBytes = 4 * 1024 * 1024;
        return cfg;
    }
    if (name == "mobile") {
        cfg.coreClockGhz = 0.6;
        cfg.memClockGhz = 1.0;
        cfg.numCores = 4;
        cfg.texSamplesPerCycle = 4.0;
        cfg.ropPixelsPerCycle = 8.0;
        cfg.rasterPixelsPerCycle = 16.0;
        cfg.dramBusBytesPerCycle = 16.0;
        cfg.l2.sizeBytes = 512 * 1024;
        return cfg;
    }
    GWS_PANIC("unknown GPU preset '", name, "'");
}

std::vector<std::string>
gpuPresetNames()
{
    return {"baseline", "wide", "fastmem", "bigcache", "mobile"};
}

} // namespace gws
