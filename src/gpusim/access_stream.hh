/**
 * @file
 * Deterministic texture access-stream synthesis.
 *
 * The simulator does not have real texel addresses, so it synthesizes a
 * representative stream per draw: accesses walk a footprint-sized
 * address space with a locality knob controlling how often the next
 * access lands near the previous one. The stream is a pure function of
 * the draw's own micro-architecture-independent properties (via a
 * stable seed), so simulating a draw in isolation yields exactly the
 * cost it has inside its frame — the property that makes subset
 * simulation sound.
 *
 * Long streams are set-sampled: at most maxSamples accesses are
 * simulated against caches scaled down by the same factor, which
 * preserves footprint-to-capacity ratios.
 */

#ifndef GWS_GPUSIM_ACCESS_STREAM_HH
#define GWS_GPUSIM_ACCESS_STREAM_HH

#include <cstdint>

#include "gpusim/cache.hh"

namespace gws {

/** Parameters of one draw's synthesized texture stream. */
struct StreamParams
{
    /** Total texture accesses the draw performs. */
    std::uint64_t totalAccesses = 0;

    /** Bytes of texture data the draw can touch. */
    std::uint64_t footprintBytes = 0;

    /** Spatial locality in [0, 1]. */
    double locality = 0.85;

    /** Stable per-draw seed. */
    std::uint64_t seed = 0;
};

/** Result of running a stream through the two-level texture hierarchy. */
struct StreamResult
{
    /** Accesses actually simulated (after sampling). */
    std::uint64_t simulatedAccesses = 0;

    /** Scale factor from simulated back to total accesses. */
    double scale = 1.0;

    /** L1 hit rate over the simulated stream. */
    double l1HitRate = 1.0;

    /** L2 hit rate over L1 misses. */
    double l2HitRate = 1.0;

    /** Estimated full-stream L1 misses (scaled). */
    double l1Misses = 0.0;

    /** Estimated full-stream L2 misses, i.e. DRAM line fills (scaled). */
    double l2Misses = 0.0;
};

/**
 * Synthesize the stream described by params and run it through a
 * two-level hierarchy with the given geometries. maxSamples bounds the
 * simulated length; when sampling kicks in, both caches are scaled
 * down by the sampling factor.
 */
StreamResult runTextureStream(const StreamParams &params,
                              const CacheConfig &l1_config,
                              const CacheConfig &l2_config,
                              std::uint64_t max_samples);

/**
 * Stable 64-bit hash of a draw's stream-relevant fields; used as the
 * stream seed. Exposed for tests.
 */
std::uint64_t mixSeed(std::uint64_t a, std::uint64_t b, std::uint64_t c);

} // namespace gws

#endif // GWS_GPUSIM_ACCESS_STREAM_HH
