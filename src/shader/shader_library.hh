/**
 * @file
 * Container for the shader programs referenced by one trace. Shader IDs
 * are dense indices into the library, which lets the phase-detection
 * shader vectors be simple bitsets.
 */

#ifndef GWS_SHADER_SHADER_LIBRARY_HH
#define GWS_SHADER_SHADER_LIBRARY_HH

#include <vector>

#include "shader/shader_program.hh"

namespace gws {

/**
 * Dense, append-only table of shader programs. The library assigns IDs
 * sequentially; ID n is always the n-th added program.
 */
class ShaderLibrary
{
  public:
    /**
     * Add a program described by stage/name/mix; the library assigns
     * and returns its id.
     */
    ShaderId add(ShaderStage stage, std::string name, InstructionMix mix,
                 std::uint32_t temp_registers = 8);

    /** Look up a program; panics if the id is out of range. */
    const ShaderProgram &get(ShaderId id) const;

    /** True if id names a program in this library. */
    bool contains(ShaderId id) const;

    /** Number of programs. */
    std::size_t size() const { return programs.size(); }

    /** True when no program has been added. */
    bool empty() const { return programs.empty(); }

    /** Count of programs of one stage. */
    std::size_t countStage(ShaderStage stage) const;

    /** Iteration support. */
    auto begin() const { return programs.begin(); }
    auto end() const { return programs.end(); }

    /** Equality over all programs (used by serialization round-trips). */
    bool operator==(const ShaderLibrary &other) const = default;

  private:
    std::vector<ShaderProgram> programs;
};

} // namespace gws

#endif // GWS_SHADER_SHADER_LIBRARY_HH
