#include "shader/shader_library.hh"

#include "util/logging.hh"

namespace gws {

ShaderId
ShaderLibrary::add(ShaderStage stage, std::string name, InstructionMix mix,
                   std::uint32_t temp_registers)
{
    const auto id = static_cast<ShaderId>(programs.size());
    GWS_ASSERT(id != invalidShaderId, "shader library full");
    programs.emplace_back(id, stage, std::move(name), mix, temp_registers);
    return id;
}

const ShaderProgram &
ShaderLibrary::get(ShaderId id) const
{
    GWS_ASSERT(id < programs.size(), "shader id out of range: ", id,
               " (library has ", programs.size(), ")");
    return programs[id];
}

bool
ShaderLibrary::contains(ShaderId id) const
{
    return id < programs.size();
}

std::size_t
ShaderLibrary::countStage(ShaderStage stage) const
{
    std::size_t n = 0;
    for (const auto &p : programs)
        n += p.stage() == stage ? 1 : 0;
    return n;
}

} // namespace gws
