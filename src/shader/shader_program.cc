#include "shader/shader_program.hh"

#include "util/logging.hh"

namespace gws {

const char *
toString(ShaderStage stage)
{
    switch (stage) {
      case ShaderStage::Vertex:
        return "vertex";
      case ShaderStage::Pixel:
        return "pixel";
    }
    GWS_PANIC("unknown shader stage ", static_cast<int>(stage));
}

std::uint64_t
InstructionMix::totalOps() const
{
    return static_cast<std::uint64_t>(aluOps) + maddOps + specialOps +
           texOps + interpOps + controlOps;
}

std::uint64_t
InstructionMix::arithmeticOps() const
{
    return static_cast<std::uint64_t>(aluOps) + maddOps + specialOps +
           interpOps + controlOps;
}

ShaderProgram::ShaderProgram(ShaderId id, ShaderStage stage,
                             std::string name, InstructionMix mix,
                             std::uint32_t temp_registers)
    : _id(id), _stage(stage), _name(std::move(name)), _mix(mix),
      _tempRegisters(temp_registers)
{
    GWS_ASSERT(_id != invalidShaderId, "shader id collides with sentinel");
}

} // namespace gws
