/**
 * @file
 * Shader program model. A shader is described by its per-invocation
 * instruction mix rather than actual code: that is exactly the level of
 * detail the paper's micro-architecture-independent characterization and
 * the draw-call-level performance model consume.
 */

#ifndef GWS_SHADER_SHADER_PROGRAM_HH
#define GWS_SHADER_SHADER_PROGRAM_HH

#include <cstdint>
#include <string>

namespace gws {

/** Identifier of a shader program within one trace's ShaderLibrary. */
using ShaderId = std::uint32_t;

/** Sentinel for "no shader bound". */
constexpr ShaderId invalidShaderId = UINT32_MAX;

/** Pipeline stage a shader program executes in. */
enum class ShaderStage : std::uint8_t { Vertex = 0, Pixel = 1 };

/** Printable name of a shader stage. */
const char *toString(ShaderStage stage);

/**
 * Per-invocation dynamic instruction mix of a shader program.
 *
 * Counts are averages over one invocation (one vertex for a vertex
 * shader, one fragment for a pixel shader) and are what a static
 * analysis plus API-state inspection of a real shader would yield.
 */
struct InstructionMix
{
    /** Simple ALU operations (add, mul, logic, compare). */
    std::uint32_t aluOps = 0;

    /** Fused multiply-add operations. */
    std::uint32_t maddOps = 0;

    /** Transcendental / special-function ops (rcp, rsq, sin, exp). */
    std::uint32_t specialOps = 0;

    /** Texture sampling instructions. */
    std::uint32_t texOps = 0;

    /** Attribute interpolation operations (pixel shaders). */
    std::uint32_t interpOps = 0;

    /** Control-flow operations (branches, loops). */
    std::uint32_t controlOps = 0;

    /** Total dynamic operations per invocation. */
    std::uint64_t totalOps() const;

    /**
     * Arithmetic operations per invocation (everything that occupies a
     * SIMD ALU lane: alu + madd + special + interp + control).
     */
    std::uint64_t arithmeticOps() const;

    /** Equality: all counters equal. */
    bool operator==(const InstructionMix &other) const = default;
};

/**
 * A shader program: stage, name, and instruction mix, plus the register
 * footprint that a real compiler would report (used by occupancy-style
 * extensions; kept micro-architecture independent).
 */
class ShaderProgram
{
  public:
    /** Default-construct an invalid program (needed for containers). */
    ShaderProgram() = default;

    /** Construct a fully-specified program. */
    ShaderProgram(ShaderId id, ShaderStage stage, std::string name,
                  InstructionMix mix, std::uint32_t temp_registers = 8);

    /** Program identifier within its library. */
    ShaderId id() const { return _id; }

    /** Pipeline stage. */
    ShaderStage stage() const { return _stage; }

    /** Human-readable name (e.g. "ps_env_lit_2tex"). */
    const std::string &name() const { return _name; }

    /** Per-invocation instruction mix. */
    const InstructionMix &mix() const { return _mix; }

    /** Temporary (general-purpose) register footprint. */
    std::uint32_t tempRegisters() const { return _tempRegisters; }

    /** True if the program has a valid id. */
    bool valid() const { return _id != invalidShaderId; }

    /** Equality over all fields. */
    bool operator==(const ShaderProgram &other) const = default;

  private:
    ShaderId _id = invalidShaderId;
    ShaderStage _stage = ShaderStage::Vertex;
    std::string _name;
    InstructionMix _mix;
    std::uint32_t _tempRegisters = 8;
};

} // namespace gws

#endif // GWS_SHADER_SHADER_PROGRAM_HH
