#include "cluster/bic.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace gws {

namespace {

/**
 * Dimensions that actually vary across the sample. Degenerate
 * (constant) dimensions carry no information and would deflate the
 * shared-variance estimate, biasing the BIC toward large k.
 */
std::size_t
effectiveDims(const std::vector<FeatureVector> &points)
{
    std::size_t active = 0;
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        const double first = points.front().at(d);
        for (const auto &p : points) {
            if (p.at(d) != first) {
                ++active;
                break;
            }
        }
    }
    return std::max<std::size_t>(active, 1);
}

} // namespace

double
clusterLogLikelihood(const Clustering &clustering,
                     const std::vector<FeatureVector> &points)
{
    GWS_ASSERT(points.size() == clustering.assignment.size(),
               "BIC: points/assignment length mismatch");
    const double n = static_cast<double>(points.size());
    const double d = static_cast<double>(effectiveDims(points));
    const double k = static_cast<double>(clustering.k);

    if (points.size() <= clustering.k)
        return 0.0; // perfect fit, zero variance: likelihood saturates

    // Shared spherical variance (MLE with k centroids spent).
    const double inertia = clustering.inertia(points);
    const double sigma2 = inertia / (d * (n - k));
    if (sigma2 <= 0.0)
        return 0.0;

    double log_l = 0.0;
    for (std::size_t size : clustering.sizes()) {
        const double r = static_cast<double>(size);
        log_l += r * std::log(r / n);
    }
    log_l -= n * d / 2.0 * std::log(2.0 * M_PI * sigma2);
    log_l -= d * (n - k) / 2.0;
    return log_l;
}

double
bicScore(const Clustering &clustering,
         const std::vector<FeatureVector> &points)
{
    if (points.empty())
        return -std::numeric_limits<double>::infinity();
    const double n = static_cast<double>(points.size());
    const double d = static_cast<double>(effectiveDims(points));
    const double k = static_cast<double>(clustering.k);
    // Free parameters: k-1 mixture weights, k*d centroid coords, one
    // shared variance.
    const double params = (k - 1.0) + k * d + 1.0;
    return clusterLogLikelihood(clustering, points) -
           params / 2.0 * std::log(n);
}

} // namespace gws
