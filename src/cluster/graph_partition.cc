#include "cluster/graph_partition.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/feature_matrix.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/**
 * Symmetric k-NN similarity graph: each point contributes edges to
 * its `neighbors` nearest others (squared distances from the SoA
 * batch kernel, ties toward the lower index), weighted 1 / (1 + d²)
 * so near-duplicates bind tightly and far pairs barely matter.
 * buildGraph() symmetrizes and coalesces the union.
 */
PartGraph
knnGraph(const std::vector<FeatureVector> &points, std::size_t neighbors)
{
    const std::size_t n = points.size();
    const FeatureMatrix matrix(points);
    const std::size_t k = std::min(neighbors, n - 1);

    std::vector<GraphEdge> edges;
    edges.reserve(n * k);
    std::vector<double> dist(n);
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
        matrix.squaredDistanceBatch(0, n, points[i], dist.data());
        for (std::size_t j = 0; j < n; ++j)
            order[j] = static_cast<std::uint32_t>(j);
        order[i] = order[n - 1]; // drop self before the selection
        std::partial_sort(order.begin(),
                          order.begin() +
                              static_cast<std::ptrdiff_t>(k),
                          order.begin() +
                              static_cast<std::ptrdiff_t>(n - 1),
                          [&dist](std::uint32_t a, std::uint32_t b) {
                              return dist[a] != dist[b]
                                         ? dist[a] < dist[b]
                                         : a < b;
                          });
        for (std::size_t j = 0; j < k; ++j)
            edges.push_back({static_cast<std::uint32_t>(i), order[j],
                             1.0 / (1.0 + dist[order[j]])});
    }
    return buildGraph(std::vector<double>(n, 1.0), edges);
}

} // namespace

Clustering
graphPartitionCluster(const std::vector<FeatureVector> &points,
                      const GraphPartitionConfig &config)
{
    const std::size_t n = points.size();
    GWS_ASSERT(n > 0, "graphPartitionCluster on an empty point set");

    std::size_t k = config.targetK;
    if (k == 0) {
        const double eff =
            std::clamp(config.targetEfficiency, 0.0, 1.0);
        k = static_cast<std::size_t>(
            std::lround(static_cast<double>(n) * (1.0 - eff)));
    }
    k = std::clamp<std::size_t>(k, 1, n);

    Clustering out;
    out.k = k;
    if (k == n) {
        // Singletons need no graph.
        out.assignment.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            out.assignment[i] = static_cast<std::uint32_t>(i);
            out.representatives.push_back(i);
            out.centroids.push_back(points[i]);
        }
        out.validate();
        return out;
    }

    PartitionConfig pcfg;
    pcfg.parts = k;
    pcfg.costFn = config.costFn;
    pcfg.balanceTolerance = config.balanceTolerance;
    pcfg.refinePasses = config.refinePasses;
    // Coarsen close to k before seeding: heavy-edge matching merges
    // near-duplicate draws, so the surviving coarse nodes are tight
    // similarity groups and make far better part seeds than raw
    // points (whose unit weights leave seed choice to index order).
    pcfg.coarsenNodesPerPart = 2;
    PartitionResult res =
        multilevelPartition(knnGraph(points, config.neighbors), pcfg);
    out.assignment = std::move(res.assignment);

    // Centroids are member means, accumulated in ascending item order.
    out.centroids.assign(k, FeatureVector{});
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = out.assignment[i];
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            out.centroids[c].at(d) += points[i].at(d);
        ++sizes[c];
    }
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            out.centroids[c].at(d) /= static_cast<double>(sizes[c]);

    // Representative = member nearest its centroid (strict <, so the
    // lowest index wins ties).
    out.representatives.assign(k, 0);
    std::vector<double> best(k,
                             std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d =
            points[i].squaredDistance(out.centroids[c]);
        if (d < best[c]) {
            best[c] = d;
            out.representatives[c] = i;
        }
    }
    out.validate();
    return out;
}

} // namespace gws
