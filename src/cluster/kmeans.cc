#include "cluster/kmeans.hh"

#include <algorithm>
#include <atomic>
#include <limits>

#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {

namespace {

/** Index of the centroid nearest to a point. */
std::uint32_t
nearestCentroid(const FeatureVector &p,
                const std::vector<FeatureVector> &centroids)
{
    std::uint32_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = p.squaredDistance(centroids[c]);
        if (d < best_d) {
            best_d = d;
            best = static_cast<std::uint32_t>(c);
        }
    }
    return best;
}

std::vector<FeatureVector>
seedCentroids(const std::vector<FeatureVector> &points, std::size_t k,
              KMeansInit init, Rng &rng)
{
    std::vector<FeatureVector> centroids;
    centroids.reserve(k);
    if (init == KMeansInit::Random) {
        const auto perm = rng.permutation(points.size());
        for (std::size_t i = 0; i < k; ++i)
            centroids.push_back(points[perm[i]]);
        return centroids;
    }
    // k-means++: first uniform, then D^2-weighted. The D^2 scan is
    // the O(n k) hot spot, and every d2[i] is independent, so it runs
    // in parallel; the weight total is summed serially in index order
    // afterwards to keep the draw deterministic.
    centroids.push_back(points[rng.index(points.size())]);
    std::vector<double> d2(points.size());
    while (centroids.size() < k) {
        parallelFor(0, points.size(), 0, [&](std::size_t i) {
            d2[i] = points[i].squaredDistance(centroids[0]);
            for (std::size_t c = 1; c < centroids.size(); ++c)
                d2[i] = std::min(d2[i],
                                 points[i].squaredDistance(centroids[c]));
        });
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i)
            total += d2[i];
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; any pick
            // works and Lloyd will repair duplicates.
            centroids.push_back(points[rng.index(points.size())]);
            continue;
        }
        double target = rng.uniform() * total;
        std::size_t pick = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= d2[i];
            if (target < 0.0) {
                pick = i;
                break;
            }
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

struct LloydRun
{
    std::vector<std::uint32_t> assignment;
    std::vector<FeatureVector> centroids;
    double inertia = 0.0;
    std::size_t iterations = 0;
};

LloydRun
runLloyd(const std::vector<FeatureVector> &points, std::size_t k,
         const KMeansConfig &config, std::uint64_t seed)
{
    Rng rng(seed);
    LloydRun run;
    run.centroids = seedCentroids(points, k, config.init, rng);
    run.assignment.assign(points.size(), 0);

    for (std::size_t iter = 0; iter < config.maxIterations; ++iter) {
        ++run.iterations;
        // Assignment: each point's nearest centroid is independent of
        // every other point's, so the O(n k) scan fans out; writes go
        // to distinct indices and the only shared state is the
        // monotonic "anything moved" flag.
        std::atomic<bool> changed_flag{false};
        parallelChunks(0, points.size(), 0,
                       [&](std::size_t b, std::size_t e) {
                           bool moved = false;
                           for (std::size_t i = b; i < e; ++i) {
                               const std::uint32_t c = nearestCentroid(
                                   points[i], run.centroids);
                               if (c != run.assignment[i]) {
                                   run.assignment[i] = c;
                                   moved = true;
                               }
                           }
                           if (moved)
                               changed_flag.store(
                                   true, std::memory_order_relaxed);
                       });
        bool changed = changed_flag.load();

        // Recompute centroids: chunk-local partial sums are combined
        // in chunk-index order (deterministic at any thread count);
        // empty clusters are repaired serially by stealing the point
        // farthest from its centroid.
        struct Accum
        {
            std::vector<FeatureVector> sums;
            std::vector<std::size_t> counts;
        };
        Accum acc = parallelReduce<Accum>(
            0, points.size(), 0,
            Accum{std::vector<FeatureVector>(k),
                  std::vector<std::size_t>(k, 0)},
            [&](std::size_t b, std::size_t e) {
                Accum part{std::vector<FeatureVector>(k),
                           std::vector<std::size_t>(k, 0)};
                for (std::size_t i = b; i < e; ++i) {
                    const std::uint32_t c = run.assignment[i];
                    for (std::size_t d = 0; d < numFeatureDims; ++d)
                        part.sums[c].at(d) += points[i].at(d);
                    ++part.counts[c];
                }
                return part;
            },
            [&](Accum lhs, Accum rhs) {
                for (std::size_t c = 0; c < k; ++c) {
                    for (std::size_t d = 0; d < numFeatureDims; ++d)
                        lhs.sums[c].at(d) += rhs.sums[c].at(d);
                    lhs.counts[c] += rhs.counts[c];
                }
                return lhs;
            });
        std::vector<FeatureVector> &sums = acc.sums;
        std::vector<std::size_t> &counts = acc.counts;
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                double worst = -1.0;
                std::size_t worst_i = 0;
                for (std::size_t i = 0; i < points.size(); ++i) {
                    if (counts[run.assignment[i]] <= 1)
                        continue;
                    const double d = points[i].squaredDistance(
                        run.centroids[run.assignment[i]]);
                    if (d > worst) {
                        worst = d;
                        worst_i = i;
                    }
                }
                --counts[run.assignment[worst_i]];
                for (std::size_t d = 0; d < numFeatureDims; ++d)
                    sums[run.assignment[worst_i]].at(d) -=
                        points[worst_i].at(d);
                run.assignment[worst_i] = static_cast<std::uint32_t>(c);
                counts[c] = 1;
                sums[c] = points[worst_i];
                changed = true;
            }
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                run.centroids[c].at(d) =
                    sums[c].at(d) / static_cast<double>(counts[c]);
        }
        if (!changed)
            break;
    }

    run.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i)
        run.inertia += points[i].squaredDistance(
            run.centroids[run.assignment[i]]);
    return run;
}

} // namespace

Clustering
kmeans(const std::vector<FeatureVector> &points, const KMeansConfig &config)
{
    ScopedRegion region("cluster.kmeans");
    GWS_ASSERT(!points.empty(), "kmeans on an empty point set");
    GWS_ASSERT(config.restarts >= 1, "kmeans needs at least one restart");
    GWS_ASSERT(config.maxIterations >= 1, "kmeans needs iterations");
    const std::size_t k = std::min(std::max<std::size_t>(config.k, 1),
                                   points.size());

    LloydRun best;
    best.inertia = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < config.restarts; ++r) {
        LloydRun run = runLloyd(points, k, config, config.seed + r);
        if (run.inertia < best.inertia)
            best = std::move(run);
    }

    Clustering out;
    out.k = k;
    out.assignment = std::move(best.assignment);
    out.centroids = std::move(best.centroids);

    // Representative = member nearest its centroid.
    out.representatives.assign(k, SIZE_MAX);
    std::vector<double> best_d(k, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d = points[i].squaredDistance(out.centroids[c]);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representatives[c] = i;
        }
    }
    out.validate();
    return out;
}

} // namespace gws
