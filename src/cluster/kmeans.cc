#include "cluster/kmeans.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "cluster/feature_matrix.hh"
#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {

namespace {

/**
 * Comparison slack of the Hamerly bounds. The maintained bounds drift
 * from the true distances by at most a few dozen ulps per iteration
 * (each update adds one rounded term); skipping only when the bound
 * clears this margin keeps every skip provably safe, so the fast path
 * never diverges from the naive argmin — including on exact ties,
 * which fail the strict test and fall through to a full scan.
 */
constexpr double kBoundSlack = 1e-9;

/** Index of the centroid nearest to a point. */
std::uint32_t
nearestCentroid(const FeatureVector &p,
                const std::vector<FeatureVector> &centroids)
{
    std::uint32_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = p.squaredDistance(centroids[c]);
        if (d < best_d) {
            best_d = d;
            best = static_cast<std::uint32_t>(c);
        }
    }
    return best;
}

/**
 * Naive k-means++ seeding: every round rescans all centroids for the
 * D^2 weights (the O(n k^2) reference the pruned path is verified
 * against).
 */
std::vector<FeatureVector>
seedCentroidsNaive(const std::vector<FeatureVector> &points, std::size_t k,
                   KMeansInit init, Rng &rng)
{
    std::vector<FeatureVector> centroids;
    centroids.reserve(k);
    if (init == KMeansInit::Random) {
        const auto perm = rng.permutation(points.size());
        for (std::size_t i = 0; i < k; ++i)
            centroids.push_back(points[perm[i]]);
        return centroids;
    }
    centroids.push_back(points[rng.index(points.size())]);
    std::vector<double> d2(points.size());
    while (centroids.size() < k) {
        parallelFor(0, points.size(), 0, [&](std::size_t i) {
            d2[i] = points[i].squaredDistance(centroids[0]);
            for (std::size_t c = 1; c < centroids.size(); ++c)
                d2[i] = std::min(d2[i],
                                 points[i].squaredDistance(centroids[c]));
        });
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i)
            total += d2[i];
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; any pick
            // works and Lloyd will repair duplicates.
            centroids.push_back(points[rng.index(points.size())]);
            continue;
        }
        double target = rng.uniform() * total;
        std::size_t pick = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= d2[i];
            if (target < 0.0) {
                pick = i;
                break;
            }
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

/**
 * Pruned k-means++ seeding: d2[i] carries the running minimum across
 * rounds, so each round compares against the newest centroid only —
 * O(n k) total instead of O(n k^2). min() is exact selection, so the
 * weights, the RNG stream, and every pick match the naive path bit
 * for bit.
 */
std::vector<FeatureVector>
seedCentroidsFast(const FeatureMatrix &matrix,
                  const std::vector<FeatureVector> &points, std::size_t k,
                  KMeansInit init, Rng &rng)
{
    std::vector<FeatureVector> centroids;
    centroids.reserve(k);
    if (init == KMeansInit::Random) {
        const auto perm = rng.permutation(points.size());
        for (std::size_t i = 0; i < k; ++i)
            centroids.push_back(points[perm[i]]);
        return centroids;
    }
    const std::size_t n = points.size();
    centroids.push_back(points[rng.index(n)]);
    std::vector<double> d2(n, std::numeric_limits<double>::infinity());
    std::vector<double> dist(n);
    while (centroids.size() < k) {
        const FeatureVector &newest = centroids.back();
        parallelChunks(0, n, 0, [&](std::size_t b, std::size_t e) {
            matrix.squaredDistanceBatch(b, e, newest, dist.data() + b);
            for (std::size_t i = b; i < e; ++i)
                d2[i] = std::min(d2[i], dist[i]);
        });
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            total += d2[i];
        if (total <= 0.0) {
            centroids.push_back(points[rng.index(n)]);
            continue;
        }
        double target = rng.uniform() * total;
        std::size_t pick = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            target -= d2[i];
            if (target < 0.0) {
                pick = i;
                break;
            }
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

/** Result of one centroid-update step. */
struct CentroidUpdate
{
    /** True when empty-cluster repair moved any point. */
    bool repaired = false;

    /** Points force-reassigned into empty clusters. */
    std::vector<std::size_t> repairedPoints;
};

/**
 * Recompute centroids from the assignment (chunk-local partial sums
 * combined in chunk-index order, deterministic at any thread count)
 * and repair empty clusters by stealing the point farthest from its
 * centroid. Shared verbatim by the naive and fast paths so their
 * centroid arithmetic is identical by construction.
 */
CentroidUpdate
updateCentroids(const std::vector<FeatureVector> &points, std::size_t k,
                std::vector<std::uint32_t> &assignment,
                std::vector<FeatureVector> &centroids)
{
    struct Accum
    {
        std::vector<FeatureVector> sums;
        std::vector<std::size_t> counts;
    };
    Accum acc = parallelReduce<Accum>(
        0, points.size(), 0,
        Accum{std::vector<FeatureVector>(k),
              std::vector<std::size_t>(k, 0)},
        [&](std::size_t b, std::size_t e) {
            Accum part{std::vector<FeatureVector>(k),
                       std::vector<std::size_t>(k, 0)};
            for (std::size_t i = b; i < e; ++i) {
                const std::uint32_t c = assignment[i];
                for (std::size_t d = 0; d < numFeatureDims; ++d)
                    part.sums[c].at(d) += points[i].at(d);
                ++part.counts[c];
            }
            return part;
        },
        [&](Accum lhs, Accum rhs) {
            for (std::size_t c = 0; c < k; ++c) {
                for (std::size_t d = 0; d < numFeatureDims; ++d)
                    lhs.sums[c].at(d) += rhs.sums[c].at(d);
                lhs.counts[c] += rhs.counts[c];
            }
            return lhs;
        });
    std::vector<FeatureVector> &sums = acc.sums;
    std::vector<std::size_t> &counts = acc.counts;

    CentroidUpdate upd;
    for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) {
            double worst = -1.0;
            std::size_t worst_i = 0;
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (counts[assignment[i]] <= 1)
                    continue;
                const double d = points[i].squaredDistance(
                    centroids[assignment[i]]);
                if (d > worst) {
                    worst = d;
                    worst_i = i;
                }
            }
            --counts[assignment[worst_i]];
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                sums[assignment[worst_i]].at(d) -= points[worst_i].at(d);
            assignment[worst_i] = static_cast<std::uint32_t>(c);
            counts[c] = 1;
            sums[c] = points[worst_i];
            upd.repaired = true;
            upd.repairedPoints.push_back(worst_i);
        }
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            centroids[c].at(d) =
                sums[c].at(d) / static_cast<double>(counts[c]);
    }
    return upd;
}

struct LloydRun
{
    std::vector<std::uint32_t> assignment;
    std::vector<FeatureVector> centroids;
    double inertia = 0.0;
    std::size_t iterations = 0;
};

/** Final inertia, summed in point order (identical in both paths). */
double
computeInertia(const std::vector<FeatureVector> &points,
               const LloydRun &run)
{
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i)
        inertia += points[i].squaredDistance(
            run.centroids[run.assignment[i]]);
    return inertia;
}

LloydRun
runLloydNaive(const std::vector<FeatureVector> &points, std::size_t k,
              const KMeansConfig &config, std::uint64_t seed)
{
    Rng rng(seed);
    LloydRun run;
    run.centroids = seedCentroidsNaive(points, k, config.init, rng);
    run.assignment.assign(points.size(), 0);

    for (std::size_t iter = 0; iter < config.maxIterations; ++iter) {
        ++run.iterations;
        obs::SpanScope iterSpan("cluster.kmeans.iter");
        // Assignment: each point's nearest centroid is independent of
        // every other point's, so the O(n k) scan fans out; writes go
        // to distinct indices and the only shared state is the
        // monotonic "anything moved" flag.
        std::atomic<bool> changed_flag{false};
        parallelChunks(0, points.size(), 0,
                       [&](std::size_t b, std::size_t e) {
                           bool moved = false;
                           for (std::size_t i = b; i < e; ++i) {
                               const std::uint32_t c = nearestCentroid(
                                   points[i], run.centroids);
                               if (c != run.assignment[i]) {
                                   run.assignment[i] = c;
                                   moved = true;
                               }
                           }
                           if (moved)
                               changed_flag.store(
                                   true, std::memory_order_relaxed);
                           runtime_detail::noteKmeansBounds(0, e - b);
                       });
        bool changed = changed_flag.load();

        changed |= updateCentroids(points, k, run.assignment,
                                   run.centroids)
                       .repaired;
        if (!changed)
            break;
    }

    run.inertia = computeInertia(points, run);
    return run;
}

/**
 * Hamerly-bounded Lloyd iterations. Every point carries an upper
 * bound on the distance to its assigned centroid and a lower bound on
 * the distance to every other centroid, maintained across iterations
 * by the centroid movement deltas (triangle inequality). A point
 * whose upper bound clears max(lower bound, half the distance from
 * its centroid to the nearest other centroid) by kBoundSlack provably
 * keeps its assignment and skips the centroid scan entirely; everyone
 * else falls back to a full scan that replays the naive arithmetic in
 * the naive order. Assignments, centroids, iteration counts, and
 * inertia are therefore bit-identical to runLloydNaive.
 */
LloydRun
runLloydFast(const FeatureMatrix &matrix,
             const std::vector<FeatureVector> &points, std::size_t k,
             const KMeansConfig &config, std::uint64_t seed)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    const std::size_t n = points.size();

    Rng rng(seed);
    LloydRun run;
    run.centroids = seedCentroidsFast(matrix, points, k, config.init, rng);
    run.assignment.assign(n, 0);

    // upper = inf forces the first pass through the exact-tighten
    // path, which either proves the initial assignment or escalates
    // to a full scan — no special first iteration needed.
    std::vector<double> upper(n, inf);
    std::vector<double> lower(n, 0.0);
    std::vector<double> delta(k, 0.0);
    double delta_max = 0.0;
    std::vector<double> half_gap(k, inf); // s[c]: half dist to nearest
    std::vector<FeatureVector> old_centroids;

    for (std::size_t iter = 0; iter < config.maxIterations; ++iter) {
        ++run.iterations;
        obs::SpanScope iterSpan("cluster.kmeans.iter");

        // Half-distance from each centroid to its nearest neighbour
        // centroid: any point closer to its centroid than this cannot
        // have a different nearest centroid.
        for (std::size_t c = 0; c < k; ++c) {
            double best = inf;
            for (std::size_t o = 0; o < k; ++o) {
                if (o == c)
                    continue;
                best = std::min(
                    best,
                    run.centroids[c].squaredDistance(run.centroids[o]));
            }
            half_gap[c] = 0.5 * std::sqrt(best);
        }

        FeatureMatrix centroid_matrix(run.centroids);
        std::atomic<bool> changed_flag{false};
        parallelChunks(0, n, 0, [&](std::size_t b, std::size_t e) {
            std::vector<double> dist(k);
            bool moved = false;
            std::uint64_t skipped = 0;
            std::uint64_t scanned = 0;
            for (std::size_t i = b; i < e; ++i) {
                const std::uint32_t a = run.assignment[i];
                double u = upper[i] + delta[a];
                double l = lower[i] - delta_max;
                upper[i] = u;
                lower[i] = l;
                const double m = std::max(l, half_gap[a]);
                if (u + kBoundSlack < m) {
                    ++skipped;
                    continue;
                }
                u = std::sqrt(
                    points[i].squaredDistance(run.centroids[a]));
                upper[i] = u;
                if (u + kBoundSlack < m) {
                    ++skipped;
                    continue;
                }
                ++scanned;
                centroid_matrix.squaredDistanceBatch(0, k, points[i],
                                                     dist.data());
                std::uint32_t best = 0;
                double best_d = inf;
                for (std::size_t c = 0; c < k; ++c) {
                    if (dist[c] < best_d) {
                        best_d = dist[c];
                        best = static_cast<std::uint32_t>(c);
                    }
                }
                double second_d = inf;
                for (std::size_t c = 0; c < k; ++c) {
                    if (c != best)
                        second_d = std::min(second_d, dist[c]);
                }
                if (best != a) {
                    run.assignment[i] = best;
                    moved = true;
                }
                upper[i] = std::sqrt(best_d);
                lower[i] = std::sqrt(second_d);
            }
            if (moved)
                changed_flag.store(true, std::memory_order_relaxed);
            runtime_detail::noteKmeansBounds(skipped, scanned);
        });
        bool changed = changed_flag.load();

        old_centroids = run.centroids;
        const CentroidUpdate upd =
            updateCentroids(points, k, run.assignment, run.centroids);
        changed |= upd.repaired;
        for (std::size_t i : upd.repairedPoints) {
            // Repair reassigned this point outside the bound
            // bookkeeping; invalidate so the next pass recomputes.
            upper[i] = inf;
            lower[i] = 0.0;
        }

        delta_max = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            delta[c] = std::sqrt(
                old_centroids[c].squaredDistance(run.centroids[c]));
            delta_max = std::max(delta_max, delta[c]);
        }

        if (!changed)
            break;
    }

    run.inertia = computeInertia(points, run);
    return run;
}

/** Resolve KMeansPath::Auto against GWS_NAIVE_KMEANS (read once). */
bool
useNaivePath(KMeansPath path)
{
    if (path == KMeansPath::Naive)
        return true;
    if (path == KMeansPath::Fast)
        return false;
    static const bool forced = envBool("GWS_NAIVE_KMEANS", false);
    return forced;
}

} // namespace

Clustering
kmeans(const std::vector<FeatureVector> &points, const KMeansConfig &config)
{
    ScopedRegion region("cluster.kmeans");
    GWS_ASSERT(!points.empty(), "kmeans on an empty point set");
    GWS_ASSERT(config.restarts >= 1, "kmeans needs at least one restart");
    GWS_ASSERT(config.maxIterations >= 1, "kmeans needs iterations");
    const std::size_t k = std::min(std::max<std::size_t>(config.k, 1),
                                   points.size());
    const bool naive = useNaivePath(config.path);

    FeatureMatrix matrix;
    if (!naive)
        matrix = FeatureMatrix(points);

    LloydRun best;
    best.inertia = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < config.restarts; ++r) {
        LloydRun run =
            naive ? runLloydNaive(points, k, config, config.seed + r)
                  : runLloydFast(matrix, points, k, config,
                                 config.seed + r);
        if (run.inertia < best.inertia)
            best = std::move(run);
    }

    Clustering out;
    out.k = k;
    out.assignment = std::move(best.assignment);
    out.centroids = std::move(best.centroids);

    // Representative = member nearest its centroid.
    out.representatives.assign(k, SIZE_MAX);
    std::vector<double> best_d(k, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d = points[i].squaredDistance(out.centroids[c]);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representatives[c] = i;
        }
    }
    out.validate();
    return out;
}

} // namespace gws
