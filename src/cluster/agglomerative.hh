/**
 * @file
 * Agglomerative (bottom-up hierarchical) clustering with centroid
 * linkage. Completes the algorithm menu next to k-means and leader
 * clustering: unlike leader clustering it is order-independent, and
 * unlike k-means it needs no k up front — merging stops when the
 * closest pair of clusters is farther apart than the distance
 * threshold (or when a target cluster count is reached).
 *
 * Complexity is O(n^2) space and roughly O(n^2 log n) time, which is
 * fine for per-frame draw counts but slower than the leader pass; it
 * serves the ablation studies and small-k scenarios.
 */

#ifndef GWS_CLUSTER_AGGLOMERATIVE_HH
#define GWS_CLUSTER_AGGLOMERATIVE_HH

#include "cluster/clustering.hh"

namespace gws {

/** Agglomerative clustering parameters. */
struct AgglomerativeConfig
{
    /**
     * Stop merging when the closest centroid pair is farther apart
     * than this distance (not squared). Ignored when targetK > 0.
     */
    double distanceThreshold = 0.95;

    /**
     * When > 0, merge until exactly this many clusters remain
     * (clamped to n) regardless of distance.
     */
    std::size_t targetK = 0;
};

/**
 * Cluster points bottom-up with centroid linkage. Representatives are
 * the member nearest each final centroid. Panics on an empty input.
 */
Clustering agglomerativeCluster(const std::vector<FeatureVector> &points,
                                const AgglomerativeConfig &config);

} // namespace gws

#endif // GWS_CLUSTER_AGGLOMERATIVE_HH
