/**
 * @file
 * Clustering quality metrics from the paper: intra-cluster prediction
 * error per cluster and the cluster-outlier fraction (clusters whose
 * intra-cluster prediction error exceeds 20 %).
 */

#ifndef GWS_CLUSTER_QUALITY_HH
#define GWS_CLUSTER_QUALITY_HH

#include "cluster/clustering.hh"

namespace gws {

/** How a member's cost is predicted from its representative's cost. */
enum class PredictionMode : std::uint8_t
{
    /** Member cost = representative cost (the paper's scheme). */
    Uniform = 0,

    /**
     * Member cost = representative cost scaled by the ratio of
     * micro-architecture-independent work units (extension studied in
     * the ablation benches).
     */
    WorkScaled = 1,
};

/** Printable mode name. */
const char *toString(PredictionMode mode);

/** The paper's outlier threshold: intra-cluster error > 20 %. */
constexpr double defaultOutlierThreshold = 0.20;

/** Quality metrics of one clustering against true per-item costs. */
struct ClusterQuality
{
    /**
     * Per-cluster intra-cluster prediction error: mean over members of
     * |predicted - actual| / actual.
     */
    std::vector<double> intraError;

    /** Mean of intraError over clusters. */
    double meanIntraError = 0.0;

    /** Clusters whose intraError exceeds the threshold. */
    std::size_t outliers = 0;

    /** outliers / k. */
    double outlierFraction = 0.0;
};

/**
 * Assess a clustering. costs[i] is the true (simulated) cost of item
 * i; work_units[i] is the micro-architecture-independent work scalar
 * used by WorkScaled mode (pass an empty vector for Uniform). Panics
 * on size mismatches or non-positive costs.
 */
ClusterQuality
assessClusterQuality(const Clustering &clustering,
                     const std::vector<double> &costs,
                     PredictionMode mode = PredictionMode::Uniform,
                     const std::vector<double> &work_units = {},
                     double outlier_threshold = defaultOutlierThreshold);

/**
 * Predicted cost of every item from its cluster representative under
 * the given mode. Building block for frame-level prediction.
 */
std::vector<double>
predictItemCosts(const Clustering &clustering,
                 const std::vector<double> &rep_costs,
                 PredictionMode mode,
                 const std::vector<double> &work_units = {});

} // namespace gws

#endif // GWS_CLUSTER_QUALITY_HH
