/**
 * @file
 * Lloyd's k-means with k-means++ seeding, multiple restarts, and
 * empty-cluster repair. Used for small-to-moderate k (the k-selection
 * sweep and the ablation studies); per-frame production clustering
 * with large k uses the cheaper LeaderClusterer.
 */

#ifndef GWS_CLUSTER_KMEANS_HH
#define GWS_CLUSTER_KMEANS_HH

#include <cstdint>

#include "cluster/clustering.hh"

namespace gws {

/** Seeding strategy for k-means. */
enum class KMeansInit : std::uint8_t
{
    /** k-means++ (D^2-weighted) seeding. */
    PlusPlus = 0,

    /** Uniform random distinct points. */
    Random = 1,
};

/**
 * Which Lloyd implementation kmeans() runs. Both produce bit-identical
 * Clustering output (assignments, centroids, representatives) — the
 * fast path's Hamerly bounds only ever skip scans they can prove
 * irrelevant, and its full scans replay the naive arithmetic in the
 * same order. test_cluster_fastpath verifies the identity.
 */
enum class KMeansPath : std::uint8_t
{
    /** Fast unless the GWS_NAIVE_KMEANS environment variable forces
     *  the naive path (read once at first use). */
    Auto = 0,

    /** Textbook full scans + full k-means++ rescans (A/B reference). */
    Naive = 1,

    /** SoA feature matrix, Hamerly upper/lower distance bounds, and
     *  newest-centroid-only k-means++ D^2 pruning. */
    Fast = 2,
};

/** k-means parameters. */
struct KMeansConfig
{
    /** Number of clusters (clamped to the number of points). */
    std::size_t k = 8;

    /** Maximum Lloyd iterations per restart. */
    std::size_t maxIterations = 50;

    /** Independent restarts; the lowest-inertia run wins. */
    std::size_t restarts = 2;

    /** Seeding strategy. */
    KMeansInit init = KMeansInit::PlusPlus;

    /** RNG seed (restart r uses seed + r). */
    std::uint64_t seed = 12345;

    /** Implementation selection (bit-identical either way). */
    KMeansPath path = KMeansPath::Auto;
};

/**
 * Cluster points with k-means. Representatives are the item nearest
 * each final centroid. Panics on an empty input; k is clamped to n.
 */
Clustering kmeans(const std::vector<FeatureVector> &points,
                  const KMeansConfig &config);

} // namespace gws

#endif // GWS_CLUSTER_KMEANS_HH
