/**
 * @file
 * Lloyd's k-means with k-means++ seeding, multiple restarts, and
 * empty-cluster repair. Used for small-to-moderate k (the k-selection
 * sweep and the ablation studies); per-frame production clustering
 * with large k uses the cheaper LeaderClusterer.
 */

#ifndef GWS_CLUSTER_KMEANS_HH
#define GWS_CLUSTER_KMEANS_HH

#include <cstdint>

#include "cluster/clustering.hh"

namespace gws {

/** Seeding strategy for k-means. */
enum class KMeansInit : std::uint8_t
{
    /** k-means++ (D^2-weighted) seeding. */
    PlusPlus = 0,

    /** Uniform random distinct points. */
    Random = 1,
};

/** k-means parameters. */
struct KMeansConfig
{
    /** Number of clusters (clamped to the number of points). */
    std::size_t k = 8;

    /** Maximum Lloyd iterations per restart. */
    std::size_t maxIterations = 50;

    /** Independent restarts; the lowest-inertia run wins. */
    std::size_t restarts = 2;

    /** Seeding strategy. */
    KMeansInit init = KMeansInit::PlusPlus;

    /** RNG seed (restart r uses seed + r). */
    std::uint64_t seed = 12345;
};

/**
 * Cluster points with k-means. Representatives are the item nearest
 * each final centroid. Panics on an empty input; k is clamped to n.
 */
Clustering kmeans(const std::vector<FeatureVector> &points,
                  const KMeansConfig &config);

} // namespace gws

#endif // GWS_CLUSTER_KMEANS_HH
