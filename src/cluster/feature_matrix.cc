#include "cluster/feature_matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace gws {

namespace {

/** Round n up to a multiple of the doubles that fit one alignment unit. */
std::size_t
paddedStride(std::size_t n)
{
    constexpr std::size_t per =
        FeatureMatrix::columnAlignment / sizeof(double);
    return (n + per - 1) / per * per;
}

} // namespace

FeatureMatrix::FeatureMatrix(const std::vector<FeatureVector> &points)
    : count(points.size()), stride(paddedStride(points.size()))
{
    if (count == 0)
        return;
    storage.reset(static_cast<double *>(::operator new[](
        numFeatureDims * stride * sizeof(double),
        std::align_val_t(columnAlignment))));
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        double *col = storage.get() + d * stride;
        for (std::size_t i = 0; i < count; ++i)
            col[i] = points[i].at(d);
        for (std::size_t i = count; i < stride; ++i)
            col[i] = 0.0; // padding lanes stay finite
    }
    norms2.resize(count);
    normsEuclid.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        double sum = 0.0;
        for (std::size_t d = 0; d < numFeatureDims; ++d) {
            const double v = points[i].at(d);
            sum += v * v;
        }
        norms2[i] = sum;
        normsEuclid[i] = std::sqrt(sum);
    }
}

FeatureVector
FeatureMatrix::point(std::size_t i) const
{
    GWS_ASSERT(i < count, "point index ", i, " out of range ", count);
    FeatureVector v;
    for (std::size_t d = 0; d < numFeatureDims; ++d)
        v.at(d) = column(d)[i];
    return v;
}

double
FeatureMatrix::squaredDistanceTo(std::size_t i,
                                 const FeatureVector &q) const
{
    double sum = 0.0;
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        const double diff = column(d)[i] - q.at(d);
        sum += diff * diff;
    }
    return sum;
}

void
FeatureMatrix::squaredDistanceBatch(std::size_t begin, std::size_t end,
                                    const FeatureVector &q,
                                    double *out) const
{
    GWS_ASSERT(begin <= end && end <= count, "bad batch range [", begin,
               ", ", end, ") over ", count);
    constexpr std::size_t block = 256;
    for (std::size_t base = begin; base < end; base += block) {
        const std::size_t len = std::min(block, end - base);
        double *acc = out + (base - begin);
        {
            const double qd = q.at(0);
            const double *col = column(0) + base;
            for (std::size_t j = 0; j < len; ++j) {
                const double diff = col[j] - qd;
                acc[j] = diff * diff;
            }
        }
        for (std::size_t d = 1; d < numFeatureDims; ++d) {
            const double qd = q.at(d);
            const double *col = column(d) + base;
            for (std::size_t j = 0; j < len; ++j) {
                const double diff = col[j] - qd;
                acc[j] += diff * diff;
            }
        }
    }
}

} // namespace gws
