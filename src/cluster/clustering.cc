#include "cluster/clustering.hh"

#include "util/logging.hh"

namespace gws {

std::vector<std::size_t>
Clustering::members(std::size_t cluster) const
{
    GWS_ASSERT(cluster < k, "cluster index out of range: ", cluster);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        if (assignment[i] == cluster)
            out.push_back(i);
    }
    return out;
}

std::vector<std::size_t>
Clustering::sizes() const
{
    std::vector<std::size_t> out(k, 0);
    for (std::uint32_t c : assignment)
        ++out[c];
    return out;
}

double
Clustering::efficiency() const
{
    if (assignment.empty())
        return 0.0;
    return 1.0 - static_cast<double>(k) /
                     static_cast<double>(assignment.size());
}

double
Clustering::inertia(const std::vector<FeatureVector> &points) const
{
    GWS_ASSERT(points.size() == assignment.size(),
               "inertia: points/assignment length mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i)
        sum += points[i].squaredDistance(centroids[assignment[i]]);
    return sum;
}

void
Clustering::validate() const
{
    GWS_ASSERT(representatives.size() == k, "reps/k mismatch");
    GWS_ASSERT(centroids.size() == k, "centroids/k mismatch");
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        GWS_ASSERT(assignment[i] < k, "item ", i,
                   " assigned to out-of-range cluster ", assignment[i]);
        ++count[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
        GWS_ASSERT(count[c] > 0, "cluster ", c, " is empty");
        const std::size_t rep = representatives[c];
        GWS_ASSERT(rep < assignment.size(),
                   "rep of cluster ", c, " out of range");
        GWS_ASSERT(assignment[rep] == c, "rep of cluster ", c,
                   " belongs to cluster ", assignment[rep]);
    }
}

} // namespace gws
