#include "cluster/leader.hh"

#include <cmath>
#include <limits>

#include "cluster/feature_matrix.hh"
#include "runtime/counters.hh"
#include "runtime/parallel_for.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/**
 * Slack of the norm-based reject: a candidate is only discarded when
 * its triangle-inequality lower bound clears the threshold by this
 * margin, so the few-ulp rounding of the cached norms can never
 * discard a candidate the exact distance would have kept.
 */
constexpr double kNormRejectSlack = 1e-9;

} // namespace

Clustering
leaderCluster(const std::vector<FeatureVector> &points,
              const LeaderConfig &config)
{
    GWS_ASSERT(!points.empty(), "leader clustering on an empty point set");
    GWS_ASSERT(config.radius >= 0.0, "negative radius: ", config.radius);
    ScopedRegion region("cluster.leader");
    const double r2 = config.radius * config.radius;
    const std::size_t n = points.size();

    const FeatureMatrix matrix(points);

    Clustering out;
    std::vector<std::size_t> leader_index;  // cluster -> founding item
    std::vector<double> leader_norm;        // cluster -> founder norm
    out.assignment.assign(n, 0);

    // Pass 1: greedy leader assignment in submission order. A leader
    // whose norm differs from the point's by more than the radius (or
    // the current best distance) cannot be within it — d(x, l) >=
    // abs(norm(x) - norm(l)) — so most candidates are rejected from the cached
    // norms without touching their coordinates.
    std::uint64_t norm_rejects = 0;
    std::uint64_t full_distances = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double my_norm = matrix.norm(i);
        double best_d = std::numeric_limits<double>::infinity();
        std::size_t best_c = SIZE_MAX;
        for (std::size_t c = 0; c < leader_index.size(); ++c) {
            const double gap = my_norm - leader_norm[c];
            const double reject_at =
                config.nearestLeader ? std::min(r2, best_d) : r2;
            if (gap * gap > reject_at + kNormRejectSlack) {
                ++norm_rejects;
                continue;
            }
            ++full_distances;
            const double d =
                matrix.squaredDistanceTo(leader_index[c],
                                         points[i]);
            if (d < best_d) {
                best_d = d;
                best_c = c;
            }
            if (!config.nearestLeader && best_d <= r2)
                break; // first leader within the radius wins
        }
        if (best_c != SIZE_MAX && best_d <= r2) {
            out.assignment[i] = static_cast<std::uint32_t>(best_c);
        } else {
            out.assignment[i] =
                static_cast<std::uint32_t>(leader_index.size());
            leader_index.push_back(i);
            leader_norm.push_back(my_norm);
        }
    }
    out.k = leader_index.size();
    runtime_detail::noteLeaderScan(norm_rejects, full_distances);

    auto recompute_centroids = [&]() {
        out.centroids.assign(out.k, FeatureVector());
        std::vector<std::size_t> counts(out.k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = out.assignment[i];
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                out.centroids[c].at(d) += points[i].at(d);
            ++counts[c];
        }
        for (std::size_t c = 0; c < out.k; ++c) {
            GWS_ASSERT(counts[c] > 0, "leader cluster ", c, " empty");
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                out.centroids[c].at(d) /= static_cast<double>(counts[c]);
        }
    };
    recompute_centroids();

    if (config.refine) {
        // Pass 2: reassign to the nearest centroid, but never let a
        // founding leader leave its own cluster (keeps clusters
        // non-empty without a repair loop). Each point scans the
        // centroid matrix with the batch kernel; writes are index-
        // addressed, so the pass parallelizes bit-identically.
        const FeatureMatrix centroid_matrix(out.centroids);
        const std::size_t k = out.k;
        parallelChunks(0, n, 0, [&](std::size_t b, std::size_t e) {
            std::vector<double> dist(k);
            for (std::size_t i = b; i < e; ++i) {
                centroid_matrix.squaredDistanceBatch(0, k, points[i],
                                                     dist.data());
                double best_d =
                    std::numeric_limits<double>::infinity();
                std::uint32_t best_c = out.assignment[i];
                for (std::size_t c = 0; c < k; ++c) {
                    if (dist[c] < best_d) {
                        best_d = dist[c];
                        best_c = static_cast<std::uint32_t>(c);
                    }
                }
                out.assignment[i] = best_c;
            }
        });
        for (std::size_t c = 0; c < out.k; ++c)
            out.assignment[leader_index[c]] =
                static_cast<std::uint32_t>(c);
        recompute_centroids();
    }

    // Representatives: member nearest the final centroid.
    out.representatives.assign(out.k, SIZE_MAX);
    std::vector<double> best_d(out.k,
                               std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d = points[i].squaredDistance(out.centroids[c]);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representatives[c] = i;
        }
    }
    out.validate();
    return out;
}

} // namespace gws
