#include "cluster/leader.hh"

#include <limits>

#include "util/logging.hh"

namespace gws {

Clustering
leaderCluster(const std::vector<FeatureVector> &points,
              const LeaderConfig &config)
{
    GWS_ASSERT(!points.empty(), "leader clustering on an empty point set");
    GWS_ASSERT(config.radius >= 0.0, "negative radius: ", config.radius);
    const double r2 = config.radius * config.radius;

    Clustering out;
    std::vector<std::size_t> leader_index; // cluster -> founding item
    out.assignment.assign(points.size(), 0);

    // Pass 1: greedy leader assignment in submission order.
    for (std::size_t i = 0; i < points.size(); ++i) {
        double best_d = std::numeric_limits<double>::infinity();
        std::size_t best_c = SIZE_MAX;
        for (std::size_t c = 0; c < leader_index.size(); ++c) {
            const double d =
                points[i].squaredDistance(points[leader_index[c]]);
            if (d < best_d) {
                best_d = d;
                best_c = c;
            }
        }
        if (best_c != SIZE_MAX && best_d <= r2) {
            out.assignment[i] = static_cast<std::uint32_t>(best_c);
        } else {
            out.assignment[i] =
                static_cast<std::uint32_t>(leader_index.size());
            leader_index.push_back(i);
        }
    }
    out.k = leader_index.size();

    auto recompute_centroids = [&]() {
        out.centroids.assign(out.k, FeatureVector());
        std::vector<std::size_t> counts(out.k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::uint32_t c = out.assignment[i];
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                out.centroids[c].at(d) += points[i].at(d);
            ++counts[c];
        }
        for (std::size_t c = 0; c < out.k; ++c) {
            GWS_ASSERT(counts[c] > 0, "leader cluster ", c, " empty");
            for (std::size_t d = 0; d < numFeatureDims; ++d)
                out.centroids[c].at(d) /= static_cast<double>(counts[c]);
        }
    };
    recompute_centroids();

    if (config.refine) {
        // Pass 2: reassign to the nearest centroid, but never let a
        // founding leader leave its own cluster (keeps clusters
        // non-empty without a repair loop).
        for (std::size_t i = 0; i < points.size(); ++i) {
            double best_d = std::numeric_limits<double>::infinity();
            std::uint32_t best_c = out.assignment[i];
            for (std::size_t c = 0; c < out.k; ++c) {
                const double d =
                    points[i].squaredDistance(out.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best_c = static_cast<std::uint32_t>(c);
                }
            }
            out.assignment[i] = best_c;
        }
        for (std::size_t c = 0; c < out.k; ++c)
            out.assignment[leader_index[c]] =
                static_cast<std::uint32_t>(c);
        recompute_centroids();
    }

    // Representatives: member nearest the final centroid.
    out.representatives.assign(out.k, SIZE_MAX);
    std::vector<double> best_d(out.k,
                               std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d = points[i].squaredDistance(out.centroids[c]);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representatives[c] = i;
        }
    }
    out.validate();
    return out;
}

} // namespace gws
