/**
 * @file
 * Bayesian Information Criterion scoring of a clustering, following
 * the X-means / SimPoint formulation (spherical Gaussian clusters,
 * shared variance). Used by the k-selection sweep.
 */

#ifndef GWS_CLUSTER_BIC_HH
#define GWS_CLUSTER_BIC_HH

#include "cluster/clustering.hh"

namespace gws {

/**
 * BIC score of a clustering over its points: higher is better. Returns
 * -infinity when the likelihood is undefined (fewer points than
 * clusters would require). Panics on a size mismatch.
 */
double bicScore(const Clustering &clustering,
                const std::vector<FeatureVector> &points);

/**
 * Log-likelihood term of the BIC under the spherical Gaussian model.
 * Exposed separately for tests.
 */
double clusterLogLikelihood(const Clustering &clustering,
                            const std::vector<FeatureVector> &points);

} // namespace gws

#endif // GWS_CLUSTER_BIC_HH
