/**
 * @file
 * Structure-of-arrays feature matrix: the shared distance substrate of
 * every clustering algorithm.
 *
 * Points arrive as AoS FeatureVector (one std::array<double,15> per
 * draw); the hot loops of k-means, leader, and agglomerative
 * clustering are all "distance from many points to one query", which
 * an AoS layout serves one cache line per point per dimension. The
 * FeatureMatrix transposes the set once into 64-byte-aligned columns
 * (column d holds dimension d of every point) so the batch kernel can
 * stream each column contiguously, and caches each point's squared
 * norm for triangle-inequality rejects.
 *
 * Bit-identity contract: squaredDistanceBatch() accumulates the
 * per-dimension terms of each point in ascending dimension order —
 * exactly the order FeatureVector::squaredDistance uses — so every
 * distance it produces is bit-identical to the scalar AoS path. The
 * kernel is written as plain loops with the point index innermost;
 * each point owns its own accumulation chain, so the compiler is free
 * to vectorize across points without reassociating any sum.
 */

#ifndef GWS_CLUSTER_FEATURE_MATRIX_HH
#define GWS_CLUSTER_FEATURE_MATRIX_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "features/feature_vector.hh"

namespace gws {

/** SoA view of a fixed point set with cached squared norms. */
class FeatureMatrix
{
  public:
    /** Alignment of every column start, in bytes. */
    static constexpr std::size_t columnAlignment = 64;

    /** Empty matrix. */
    FeatureMatrix() = default;

    /** Transpose a point set into columns (one pass, O(n d)). */
    explicit FeatureMatrix(const std::vector<FeatureVector> &points);

    /** Number of points. */
    std::size_t size() const { return count; }

    /** True when the matrix holds no points. */
    bool empty() const { return count == 0; }

    /** Column of dimension d (aligned, length size()). */
    const double *column(std::size_t d) const
    {
        return storage.get() + d * stride;
    }

    /** Cached squared Euclidean norm of point i. */
    double squaredNorm(std::size_t i) const { return norms2[i]; }

    /** Cached Euclidean norm (sqrt of the squared norm) of point i. */
    double norm(std::size_t i) const { return normsEuclid[i]; }

    /** Gather point i back into an AoS vector. */
    FeatureVector point(std::size_t i) const;

    /**
     * Squared distance from point i to q, bit-identical to
     * q.squaredDistance(point(i)).
     */
    double squaredDistanceTo(std::size_t i, const FeatureVector &q) const;

    /**
     * Batch kernel: out[j - begin] = squared distance from point j to
     * q for every j in [begin, end). Blocked over points with the
     * dimension loop outermost; per point, terms accumulate in
     * ascending dimension order (the bit-identity contract above).
     */
    void squaredDistanceBatch(std::size_t begin, std::size_t end,
                              const FeatureVector &q, double *out) const;

  private:
    struct AlignedFree
    {
        void operator()(double *p) const { ::operator delete[](
            p, std::align_val_t(columnAlignment)); }
    };

    std::unique_ptr<double[], AlignedFree> storage;
    std::size_t count = 0;
    std::size_t stride = 0; // doubles per column, padded for alignment
    std::vector<double> norms2;
    std::vector<double> normsEuclid;
};

} // namespace gws

#endif // GWS_CLUSTER_FEATURE_MATRIX_HH
