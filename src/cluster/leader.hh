/**
 * @file
 * Single-pass leader (radius-threshold) clustering.
 *
 * Per-frame production clustering needs hundreds of clusters over a
 * thousand-plus draws for 717 frames; Lloyd iterations at that k are
 * needlessly expensive. The leader algorithm makes one pass: a point
 * joins the nearest existing leader within the radius, otherwise it
 * founds a new cluster. An optional refinement pass recomputes
 * centroids and reassigns points to the nearest centroid.
 */

#ifndef GWS_CLUSTER_LEADER_HH
#define GWS_CLUSTER_LEADER_HH

#include "cluster/clustering.hh"

namespace gws {

/** Leader clustering parameters. */
struct LeaderConfig
{
    /**
     * Join radius in normalized feature-space distance (not squared).
     * Smaller radius -> more clusters -> lower efficiency but lower
     * prediction error; the paper's operating point is a radius that
     * lands at ~65% efficiency.
     */
    double radius = 0.95;

    /** Run the centroid-refinement pass. */
    bool refine = true;

    /**
     * Pass 1 assigns each point to the *nearest* leader within the
     * radius (the default, matching the original behaviour). When
     * false, the scan stops at the first leader within the radius —
     * cheaper, order-biased, and a different (still valid) clustering.
     */
    bool nearestLeader = true;
};

/**
 * Cluster points with the leader algorithm. Representatives are the
 * member nearest the final centroid. Panics on an empty input.
 */
Clustering leaderCluster(const std::vector<FeatureVector> &points,
                         const LeaderConfig &config);

} // namespace gws

#endif // GWS_CLUSTER_LEADER_HH
