#include "cluster/agglomerative.hh"

#include <limits>
#include <queue>

#include "cluster/feature_matrix.hh"
#include "runtime/counters.hh"
#include "util/logging.hh"

namespace gws {

namespace {

/** A candidate merge in the priority queue (lazy deletion scheme). */
struct Candidate
{
    double distance2;
    std::size_t a;
    std::size_t b;
    std::uint64_t versionA;
    std::uint64_t versionB;

    bool
    operator>(const Candidate &other) const
    {
        return distance2 > other.distance2;
    }
};

} // namespace

Clustering
agglomerativeCluster(const std::vector<FeatureVector> &points,
                     const AgglomerativeConfig &config)
{
    GWS_ASSERT(!points.empty(), "agglomerative on an empty point set");
    GWS_ASSERT(config.distanceThreshold >= 0.0, "negative threshold");
    ScopedRegion region("cluster.agglomerative");
    const std::size_t n = points.size();
    const std::size_t target =
        config.targetK > 0 ? std::min(config.targetK, n) : 1;
    const double threshold2 =
        config.targetK > 0
            ? std::numeric_limits<double>::infinity()
            : config.distanceThreshold * config.distanceThreshold;

    // Active-cluster state. Centroids move on merge; a version counter
    // invalidates stale queue entries (lazy deletion).
    std::vector<FeatureVector> centroids = points;
    std::vector<std::size_t> sizes(n, 1);
    std::vector<bool> alive(n, true);
    std::vector<std::uint64_t> version(n, 0);
    std::vector<std::size_t> parent(n);
    for (std::size_t i = 0; i < n; ++i)
        parent[i] = i;

    // Seed the queue with all pairs. The SoA batch kernel computes
    // each row's distances contiguously (bit-identical to the scalar
    // pairwise path), leaving only the pushes at O(n^2 log n).
    std::priority_queue<Candidate, std::vector<Candidate>,
                        std::greater<Candidate>>
        queue;
    const FeatureMatrix matrix(points);
    std::vector<double> dist(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i + 1 < n)
            matrix.squaredDistanceBatch(i + 1, n, points[i],
                                        dist.data() + i + 1);
        for (std::size_t j = i + 1; j < n; ++j)
            queue.push({dist[j], i, j, 0, 0});
    }

    std::size_t clusters = n;
    while (clusters > target && !queue.empty()) {
        const Candidate c = queue.top();
        queue.pop();
        if (!alive[c.a] || !alive[c.b] || version[c.a] != c.versionA ||
            version[c.b] != c.versionB) {
            continue; // stale entry
        }
        if (c.distance2 > threshold2)
            break; // closest pair too far apart: done

        // Merge b into a (centroid = size-weighted mean).
        const double wa = static_cast<double>(sizes[c.a]);
        const double wb = static_cast<double>(sizes[c.b]);
        for (std::size_t d = 0; d < numFeatureDims; ++d) {
            centroids[c.a].at(d) =
                (centroids[c.a].at(d) * wa + centroids[c.b].at(d) * wb) /
                (wa + wb);
        }
        sizes[c.a] += sizes[c.b];
        alive[c.b] = false;
        parent[c.b] = c.a;
        ++version[c.a];
        --clusters;

        // Fresh candidates from the merged cluster to all survivors.
        for (std::size_t other = 0; other < n; ++other) {
            if (!alive[other] || other == c.a)
                continue;
            queue.push({centroids[c.a].squaredDistance(centroids[other]),
                        c.a < other ? c.a : other,
                        c.a < other ? other : c.a,
                        c.a < other ? version[c.a] : version[other],
                        c.a < other ? version[other] : version[c.a]});
        }
    }

    // Path-compress the merge forest to find each point's root.
    auto find_root = [&](std::size_t i) {
        while (parent[i] != i)
            i = parent[i] = parent[parent[i]];
        return i;
    };

    Clustering out;
    std::vector<std::uint32_t> dense(n, UINT32_MAX);
    out.assignment.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = find_root(i);
        if (dense[root] == UINT32_MAX) {
            dense[root] = static_cast<std::uint32_t>(out.k++);
            out.centroids.push_back(centroids[root]);
        }
        out.assignment[i] = dense[root];
    }

    out.representatives.assign(out.k, SIZE_MAX);
    std::vector<double> best(out.k,
                             std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = out.assignment[i];
        const double d = points[i].squaredDistance(out.centroids[c]);
        if (d < best[c]) {
            best[c] = d;
            out.representatives[c] = i;
        }
    }
    out.validate();
    return out;
}

} // namespace gws
