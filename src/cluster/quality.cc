#include "cluster/quality.hh"

#include <cmath>

#include "util/logging.hh"

namespace gws {

const char *
toString(PredictionMode mode)
{
    switch (mode) {
      case PredictionMode::Uniform:
        return "uniform";
      case PredictionMode::WorkScaled:
        return "work_scaled";
    }
    GWS_PANIC("unknown prediction mode ", static_cast<int>(mode));
}

std::vector<double>
predictItemCosts(const Clustering &clustering,
                 const std::vector<double> &rep_costs, PredictionMode mode,
                 const std::vector<double> &work_units)
{
    GWS_ASSERT(rep_costs.size() == clustering.k,
               "rep_costs length ", rep_costs.size(), " != k ",
               clustering.k);
    if (mode == PredictionMode::WorkScaled) {
        GWS_ASSERT(work_units.size() == clustering.items(),
                   "WorkScaled prediction needs per-item work units");
    }
    std::vector<double> out(clustering.items(), 0.0);
    for (std::size_t i = 0; i < clustering.items(); ++i) {
        const std::uint32_t c = clustering.assignment[i];
        double predicted = rep_costs[c];
        if (mode == PredictionMode::WorkScaled) {
            const double rep_work =
                work_units[clustering.representatives[c]];
            if (rep_work > 0.0)
                predicted *= work_units[i] / rep_work;
        }
        out[i] = predicted;
    }
    return out;
}

ClusterQuality
assessClusterQuality(const Clustering &clustering,
                     const std::vector<double> &costs, PredictionMode mode,
                     const std::vector<double> &work_units,
                     double outlier_threshold)
{
    GWS_ASSERT(costs.size() == clustering.items(),
               "costs length ", costs.size(), " != items ",
               clustering.items());
    GWS_ASSERT(outlier_threshold > 0.0, "outlier threshold must be > 0");

    std::vector<double> rep_costs(clustering.k, 0.0);
    for (std::size_t c = 0; c < clustering.k; ++c) {
        rep_costs[c] = costs[clustering.representatives[c]];
        GWS_ASSERT(rep_costs[c] > 0.0,
                   "non-positive representative cost in cluster ", c);
    }
    const auto predicted =
        predictItemCosts(clustering, rep_costs, mode, work_units);

    ClusterQuality q;
    q.intraError.assign(clustering.k, 0.0);
    std::vector<std::size_t> counts(clustering.k, 0);
    for (std::size_t i = 0; i < costs.size(); ++i) {
        GWS_ASSERT(costs[i] > 0.0, "non-positive cost for item ", i);
        const std::uint32_t c = clustering.assignment[i];
        q.intraError[c] += std::fabs(predicted[i] - costs[i]) / costs[i];
        ++counts[c];
    }
    double total = 0.0;
    for (std::size_t c = 0; c < clustering.k; ++c) {
        q.intraError[c] /= static_cast<double>(counts[c]);
        total += q.intraError[c];
        if (q.intraError[c] > outlier_threshold)
            ++q.outliers;
    }
    q.meanIntraError = total / static_cast<double>(clustering.k);
    q.outlierFraction = static_cast<double>(q.outliers) /
                        static_cast<double>(clustering.k);
    return q;
}

} // namespace gws
