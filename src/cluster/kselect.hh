/**
 * @file
 * SimPoint-style k selection: sweep k, score each clustering with the
 * BIC, and pick the smallest k whose score reaches a fraction of the
 * best score seen.
 */

#ifndef GWS_CLUSTER_KSELECT_HH
#define GWS_CLUSTER_KSELECT_HH

#include "cluster/kmeans.hh"

namespace gws {

/** k-selection sweep parameters. */
struct KSelectConfig
{
    /** Largest k to try (clamped to n). */
    std::size_t maxK = 32;

    /** Step between tried k values (1 = every k). */
    std::size_t step = 1;

    /**
     * Chosen k = smallest whose BIC >= bicFraction * best BIC when
     * scores are negative, or >= bicFraction-scaled span otherwise
     * (SimPoint uses 0.9).
     */
    double bicFraction = 0.9;

    /** k-means parameters applied at every k. */
    KMeansConfig base;
};

/** Result of a k-selection sweep. */
struct KSelectResult
{
    /** The chosen number of clusters. */
    std::size_t chosenK = 1;

    /** Every k that was tried, ascending. */
    std::vector<std::size_t> triedK;

    /** BIC score of each tried k (aligned with triedK). */
    std::vector<double> bicByK;

    /** The winning clustering (refit at chosenK). */
    Clustering clustering;
};

/** Run the sweep. Panics on an empty input. */
KSelectResult selectK(const std::vector<FeatureVector> &points,
                      const KSelectConfig &config);

} // namespace gws

#endif // GWS_CLUSTER_KSELECT_HH
