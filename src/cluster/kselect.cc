#include "cluster/kselect.hh"

#include <algorithm>
#include <limits>

#include "cluster/bic.hh"
#include "util/logging.hh"

namespace gws {

KSelectResult
selectK(const std::vector<FeatureVector> &points,
        const KSelectConfig &config)
{
    GWS_ASSERT(!points.empty(), "selectK on an empty point set");
    GWS_ASSERT(config.maxK >= 1 && config.step >= 1,
               "degenerate k-selection config");
    GWS_ASSERT(config.bicFraction > 0.0 && config.bicFraction <= 1.0,
               "bicFraction out of (0,1]: ", config.bicFraction);

    const std::size_t max_k = std::min(config.maxK, points.size());
    KSelectResult result;
    std::vector<Clustering> runs;
    double best = -std::numeric_limits<double>::infinity();
    double worst = std::numeric_limits<double>::infinity();

    for (std::size_t k = 1; k <= max_k; k += config.step) {
        KMeansConfig kc = config.base;
        kc.k = k;
        Clustering c = kmeans(points, kc);
        const double score = bicScore(c, points);
        result.triedK.push_back(k);
        result.bicByK.push_back(score);
        runs.push_back(std::move(c));
        best = std::max(best, score);
        worst = std::min(worst, score);
    }

    // Smallest k whose score covers bicFraction of the observed span.
    const double span = best - worst;
    const double threshold =
        span > 0.0 ? worst + config.bicFraction * span : best;
    std::size_t pick = result.triedK.size() - 1;
    for (std::size_t i = 0; i < result.triedK.size(); ++i) {
        if (result.bicByK[i] >= threshold) {
            pick = i;
            break;
        }
    }
    result.chosenK = result.triedK[pick];
    result.clustering = std::move(runs[pick]);
    return result;
}

} // namespace gws
