/**
 * @file
 * Common clustering result representation shared by every algorithm.
 */

#ifndef GWS_CLUSTER_CLUSTERING_HH
#define GWS_CLUSTER_CLUSTERING_HH

#include <cstdint>
#include <vector>

#include "features/feature_vector.hh"

namespace gws {

/** A clustering of n items into k clusters with one representative each. */
struct Clustering
{
    /** Number of clusters. */
    std::size_t k = 0;

    /** Item index -> cluster index, length n. */
    std::vector<std::uint32_t> assignment;

    /** Cluster index -> representative item index, length k. */
    std::vector<std::size_t> representatives;

    /** Cluster centroids in feature space, length k. */
    std::vector<FeatureVector> centroids;

    /** Number of clustered items. */
    std::size_t items() const { return assignment.size(); }

    /** Member item indices of one cluster. */
    std::vector<std::size_t> members(std::size_t cluster) const;

    /** Cluster sizes, length k. */
    std::vector<std::size_t> sizes() const;

    /**
     * Clustering efficiency: the fraction of per-draw simulations the
     * clustering avoids, 1 - k/n (0 when every item is its own
     * cluster). This is the paper's headline efficiency metric.
     */
    double efficiency() const;

    /** Sum of squared distances of items to their centroid. */
    double inertia(const std::vector<FeatureVector> &points) const;

    /**
     * Panics unless the structure is self-consistent: assignments in
     * range, one representative per cluster assigned to that cluster,
     * no empty cluster.
     */
    void validate() const;
};

} // namespace gws

#endif // GWS_CLUSTER_CLUSTERING_HH
