/**
 * @file
 * Graph-partitioning clustering: the METIS-style member of the
 * algorithm menu, next to leader, k-means and agglomerative.
 *
 * The point set becomes a k-nearest-neighbor similarity graph (edge
 * weight 1 / (1 + d²), symmetrized) and the multilevel partitioner
 * (partition/multilevel.hh) cuts it into k balanced parts along weak
 * similarity edges. Where leader clustering is radius-driven and
 * k-means centroid-driven, the partitioner is *structure*-driven: it
 * looks at the whole neighborhood graph at once, which makes it the
 * methodology check the fig2/fig3 quality benches compare the other
 * families against (alternative grouping strategies materially change
 * subset quality — Characterizing and Subsetting Big Data Workloads).
 *
 * Deterministic for equal inputs: k-NN ties break toward the lower
 * index and the partitioner itself is randomness-free.
 */

#ifndef GWS_CLUSTER_GRAPH_PARTITION_HH
#define GWS_CLUSTER_GRAPH_PARTITION_HH

#include "cluster/clustering.hh"
#include "partition/multilevel.hh"

namespace gws {

/** Graph-partitioning clustering parameters. */
struct GraphPartitionConfig
{
    /**
     * Cluster count; 0 derives it from targetEfficiency. Clamped to
     * [1, n].
     */
    std::size_t targetK = 0;

    /**
     * When targetK == 0, pick k ≈ n × (1 − targetEfficiency), the k
     * at which the clustering reaches this paper-style efficiency
     * (1 − k/n).
     */
    double targetEfficiency = 0.65;

    /** Neighbors per point in the similarity graph. */
    std::size_t neighbors = 8;

    /**
     * Partitioner objective. Greedy (min-cut under the balance
     * tolerance) is the natural clustering objective — cut edges are
     * weak similarities; the balance-first objectives trade cut
     * quality for equal cluster sizes.
     */
    PartitionCostFn costFn = PartitionCostFn::Greedy;

    /**
     * Max part weight as a multiple of ideal (points per cluster).
     * Deliberately loose: natural draw clusters are heavily skewed
     * (a few repeated-state clusters absorb most draws), and forcing
     * near-equal sizes would cut through similarity structure and mix
     * dissimilar draws into one cluster. The load-balancing shard use
     * of the partitioner wants tight tolerances; clustering does not.
     */
    double balanceTolerance = 8.0;

    /** Refinement passes per uncoarsening level. */
    std::size_t refinePasses = 8;
};

/**
 * Cluster points by multilevel partitioning of their k-NN similarity
 * graph. Centroids are member means, representatives the member
 * nearest each centroid. Panics on an empty input; the result passes
 * Clustering::validate().
 */
Clustering graphPartitionCluster(const std::vector<FeatureVector> &points,
                                 const GraphPartitionConfig &config);

} // namespace gws

#endif // GWS_CLUSTER_GRAPH_PARTITION_HH
