/**
 * @file
 * Deterministic fault-injection fuzz harness for the binary input
 * boundary (trace and subset files).
 *
 * The harness takes a known-good serialized blob and systematically
 * applies corruption — truncation at every layer, bit flips, byte
 * splats, 32-bit word overwrites (length-field lies), header field
 * mutations, and trailing garbage — then asserts the decoder's
 * contract for every mutation:
 *
 *   - a typed error (TraceIoError / SubsetIoError, both IoError), or
 *   - an accepted payload that re-encodes byte-identically
 *     (i.e. the mutation landed on a don't-care value and the
 *     canonical encoding is unchanged);
 *
 * anything else — a crash, another exception type, or a decode that
 * silently canonicalizes different bytes — is a failure. Mutations
 * whose damage lands past the checksum are "resealed" (size and
 * checksum fields recomputed) so the structural validation paths are
 * exercised, not just the checksum.
 *
 * Everything is driven by the project Rng, so a (seed, iterations)
 * pair replays bit-identically; failures are dumped as artifact files
 * (mutated blob + a note with seed/iteration/kind) for offline
 * reproduction, and progress is exported as gws.fuzz.* metrics.
 */

#ifndef GWS_TESTING_FUZZ_HARNESS_HH
#define GWS_TESTING_FUZZ_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gws {
namespace fuzz {

/** Fault classes the harness injects. */
enum class Mutation : std::uint8_t {
    /** No change; the decoder must accept and round-trip. */
    None,
    /** Keep only the first 0..15 bytes (inside the header). */
    TruncateHeader,
    /** Truncate anywhere without fixing the header size field. */
    TruncateRaw,
    /** Truncate the payload and reseal size + checksum. */
    TruncateResealed,
    /** Overwrite one header byte (magic/version/size/checksum). */
    HeaderByte,
    /** Flip one payload bit without resealing (checksum must trip). */
    BitFlipRaw,
    /** Flip one payload bit and reseal (structure must decide). */
    BitFlipResealed,
    /** Splat one payload byte with a boundary value and reseal. */
    ByteSplatResealed,
    /** Overwrite a 32-bit word with a length-lie value and reseal. */
    Word32Resealed,
    /** Append trailing garbage and reseal. */
    AppendResealed,
};

/** Number of Mutation kinds (for tables and the kind picker). */
constexpr std::size_t numMutationKinds = 10;

/** Printable name of a mutation kind. */
const char *toString(Mutation m);

/**
 * Framing shape of the blob under test: Single for the one-frame
 * formats (trace, subset — one header, one checksummed payload),
 * Chunked for multi-frame containers (wtrc — a header frame followed
 * by independently framed chunks). The shape decides how "resealed"
 * mutations recompute checksums: a chunked blob is walked frame by
 * frame using the declared size fields, each complete frame's
 * checksum is recomputed over its own payload, and a damaged tail
 * frame is resealed to the bytes actually present — so structural
 * validation (sequence fields, totals, EOF) is exercised instead of
 * tripping every mutation on the first checksum.
 */
enum class Framing : std::uint8_t {
    Single,
    Chunked,
};

/** Per-mutation decoder verdict. */
enum class Outcome : std::uint8_t {
    /** Decoder raised the format's typed error. */
    TypedError,
    /** Decoder accepted; re-encoding is byte-identical to the input. */
    AcceptedIdentical,
    /** Contract violation: wrong exception or silent canonicalization. */
    Failure,
};

/** Knobs of one fuzz run. */
struct FuzzConfig
{
    /** Root seed; equal seeds replay the exact mutation sequence. */
    std::uint64_t seed = 0x5eedULL;

    /** Mutations to apply. */
    std::size_t iterations = 10000;

    /**
     * Directory for failure artifacts. Empty = $GWS_FUZZ_ARTIFACT_DIR,
     * falling back to "fuzz-artifacts" in the working directory.
     */
    std::string artifactDir;

    /** Cap on artifacts written (and failure notes kept). */
    std::size_t maxArtifacts = 8;
};

/** Aggregate result of a fuzz run over one format. */
struct FuzzReport
{
    /** Format label ("trace" or "subset"). */
    std::string format;

    /** Mutations executed. */
    std::uint64_t iterations = 0;

    /** Mutations rejected with the typed error. */
    std::uint64_t typedErrors = 0;

    /** Mutations accepted with a byte-identical re-encoding. */
    std::uint64_t acceptedIdentical = 0;

    /** Contract violations (must be zero). */
    std::uint64_t failures = 0;

    /** Mutations applied, by kind. */
    std::uint64_t perKind[numMutationKinds] = {};

    /** Typed-error outcomes, by kind. */
    std::uint64_t perKindTyped[numMutationKinds] = {};

    /** Human-readable notes for the first maxArtifacts failures. */
    std::vector<std::string> failureNotes;

    /** True when every mutation honoured the decoder contract. */
    bool ok() const { return failures == 0; }

    /** Multi-line per-kind outcome table for logs. */
    std::string summary() const;
};

/**
 * Recompute the framed header's size and checksum fields over the
 * blob's current payload bytes (offset 16 onward). No-op on blobs
 * shorter than a header. Exposed for targeted corruption tests that
 * need a structurally-reachable (checksum-valid) malformed payload.
 */
void resealFramed(std::string &blob);

/**
 * Multi-frame reseal: walk the blob frame by frame (each frame's
 * declared size field decides where the next one starts), recompute
 * every complete frame's checksum, and reseal a truncated/extended
 * tail frame to the bytes actually present. Size-field lies keep
 * lying — the walk desyncs and later "frames" get checksums at the
 * wrong offsets, which the decoder must reject with its typed error.
 */
void resealChunked(std::string &blob);

/**
 * Apply `kind` to a copy of `good`, drawing randomness from the
 * iteration seed. Exposed so tests can reproduce an artifact.
 */
std::string applyMutation(const std::string &good, Mutation kind,
                          std::uint64_t seed, std::uint64_t iteration,
                          Framing framing = Framing::Single);

/**
 * Fuzz the trace format: mutate `goodBlob` (a complete serialized
 * trace file image) cfg.iterations times and classify every decode.
 */
FuzzReport fuzzTraceFormat(const std::string &goodBlob,
                           const FuzzConfig &cfg);

/** Fuzz the subset format; same contract as fuzzTraceFormat(). */
FuzzReport fuzzSubsetFormat(const std::string &goodBlob,
                            const FuzzConfig &cfg);

/**
 * Fuzz the gws.wtrc.v1 chunked work-trace container (a complete file
 * image: header frame + chunk frames, Framing::Chunked reseal). The
 * round trip decodes every chunk through WtrcReader (finish()
 * included, so totals and EOF validation are in scope) and re-encodes
 * through WtrcWriter; the contract is the usual typed-error-or-
 * byte-identical. Note the acceptance rate is much higher than the
 * single-frame formats — most of a wtrc blob is column doubles, where
 * any resealed bit pattern is a valid value.
 */
FuzzReport fuzzWtrcFormat(const std::string &goodBlob,
                          const FuzzConfig &cfg);

} // namespace fuzz
} // namespace gws

#endif // GWS_TESTING_FUZZ_HARNESS_HH
