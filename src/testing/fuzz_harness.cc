#include "testing/fuzz_harness.hh"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/subset_io.hh"
#include "obs/metrics.hh"
#include "trace/trace_io.hh"
#include "trace/wtrc_io.hh"
#include "util/codec.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace gws {
namespace fuzz {

namespace {

/** Patch a little-endian u32 into `blob` at `pos`. */
void
patchU32(std::string &blob, std::size_t pos, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        blob[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

/** Reseal dispatch on the blob's framing shape. */
void
reseal(std::string &blob, Framing framing)
{
    if (framing == Framing::Chunked)
        resealChunked(blob);
    else
        resealFramed(blob);
}

/** Mutation body; `rng` has already been positioned past the kind draw. */
std::string
mutate(const std::string &good, Mutation kind, Rng &rng, Framing framing)
{
    std::string blob = good;
    const std::size_t payload_size =
        blob.size() > framedHeaderBytes ? blob.size() - framedHeaderBytes
                                        : 0;
    switch (kind) {
    case Mutation::None:
        break;
    case Mutation::TruncateHeader:
        blob.resize(rng.index(framedHeaderBytes));
        break;
    case Mutation::TruncateRaw:
        blob.resize(rng.index(blob.size() + 1));
        break;
    case Mutation::TruncateResealed:
        blob.resize(framedHeaderBytes + rng.index(payload_size + 1));
        reseal(blob, framing);
        break;
    case Mutation::HeaderByte:
        blob[rng.index(framedHeaderBytes)] =
            static_cast<char>(rng.nextU64() & 0xff);
        break;
    case Mutation::BitFlipRaw:
        blob[rng.index(blob.size())] ^=
            static_cast<char>(1u << rng.index(8));
        break;
    case Mutation::BitFlipResealed:
        if (payload_size == 0)
            break;
        blob[framedHeaderBytes + rng.index(payload_size)] ^=
            static_cast<char>(1u << rng.index(8));
        reseal(blob, framing);
        break;
    case Mutation::ByteSplatResealed: {
        if (payload_size == 0)
            break;
        static const unsigned char boundary[] = {0x00, 0x01, 0x7f,
                                                 0x80, 0xff};
        const std::size_t pick = rng.index(6);
        const unsigned char v =
            pick < 5 ? boundary[pick]
                     : static_cast<unsigned char>(rng.nextU64() & 0xff);
        blob[framedHeaderBytes + rng.index(payload_size)] =
            static_cast<char>(v);
        reseal(blob, framing);
        break;
    }
    case Mutation::Word32Resealed: {
        // Length-field lies: overwrite an aligned-on-nothing 32-bit
        // word with a boundary count. When it lands on a count or
        // string-length field the decoder's checkCount()/need()
        // guards must trip; elsewhere it is a field-range mutation.
        if (payload_size < 4)
            break;
        static const std::uint32_t boundary[] = {0u, 1u, 0x7fffffffu,
                                                 0xfffffffeu, 0xffffffffu};
        const std::size_t pick = rng.index(7);
        std::uint32_t v;
        if (pick < 5)
            v = boundary[pick];
        else if (pick == 5)
            v = static_cast<std::uint32_t>(rng.index(256));
        else
            v = static_cast<std::uint32_t>(rng.nextU64());
        patchU32(blob,
                 framedHeaderBytes + rng.index(payload_size - 3), v);
        reseal(blob, framing);
        break;
    }
    case Mutation::AppendResealed: {
        const std::size_t extra = 1 + rng.index(8);
        for (std::size_t i = 0; i < extra; ++i)
            blob.push_back(static_cast<char>(rng.nextU64() & 0xff));
        reseal(blob, framing);
        break;
    }
    }
    return blob;
}

/** Resolve the artifact directory: config, env, then default. */
std::string
artifactDirFor(const FuzzConfig &cfg)
{
    if (!cfg.artifactDir.empty())
        return cfg.artifactDir;
    if (const char *env = std::getenv("GWS_FUZZ_ARTIFACT_DIR"))
        if (*env != '\0')
            return env;
    return "fuzz-artifacts";
}

/** Dump a failing mutation for offline reproduction. */
void
writeArtifact(const std::string &dir, const std::string &format,
              const FuzzConfig &cfg, std::uint64_t iteration,
              Mutation kind, const std::string &blob,
              const std::string &note)
{
    ::mkdir(dir.c_str(), 0755);
    const std::string stem = dir + "/fuzz_" + format + "_iter" +
                             std::to_string(iteration);
    if (FILE *fp = std::fopen((stem + ".bin").c_str(), "wb")) {
        std::fwrite(blob.data(), 1, blob.size(), fp);
        std::fclose(fp);
    }
    if (FILE *fp = std::fopen((stem + ".txt").c_str(), "w")) {
        std::fprintf(fp,
                     "format: %s\nseed: %llu\niteration: %llu\n"
                     "mutation: %s\nnote: %s\n"
                     "reproduce: applyMutation(goodBlob, %s, %llu, %llu)\n",
                     format.c_str(),
                     static_cast<unsigned long long>(cfg.seed),
                     static_cast<unsigned long long>(iteration),
                     toString(kind), note.c_str(), toString(kind),
                     static_cast<unsigned long long>(cfg.seed),
                     static_cast<unsigned long long>(iteration));
        std::fclose(fp);
    }
}

/**
 * The generic engine: mutate, decode + re-encode via `roundTrip`,
 * classify. ErrorT is the format's typed error; any other escape is
 * a contract violation.
 */
template <typename ErrorT, typename RoundTripFn>
FuzzReport
fuzzBlob(const char *format, const std::string &good,
         RoundTripFn roundTrip, const FuzzConfig &cfg,
         Framing framing = Framing::Single)
{
    GWS_ASSERT(good.size() >= framedHeaderBytes,
               "fuzz corpus blob smaller than a header");
    FuzzReport rep;
    rep.format = format;

    auto &reg = obs::metricsRegistry();
    obs::Counter &m_iter = reg.counter("gws.fuzz.iterations");
    obs::Counter &m_typed = reg.counter("gws.fuzz.typed_errors");
    obs::Counter &m_accepted = reg.counter("gws.fuzz.accepted");
    obs::Counter &m_failures = reg.counter("gws.fuzz.failures");

    const Rng root(cfg.seed);
    const std::string dir = artifactDirFor(cfg);
    for (std::uint64_t i = 0; i < cfg.iterations; ++i) {
        Rng rng = root.fork(i);
        const auto kind =
            static_cast<Mutation>(rng.index(numMutationKinds));
        const std::string blob = mutate(good, kind, rng, framing);
        rep.perKind[static_cast<std::size_t>(kind)]++;
        rep.iterations++;
        m_iter.increment();

        Outcome outcome;
        std::string note;
        try {
            const std::string reencoded = roundTrip(blob);
            if (reencoded == blob) {
                outcome = Outcome::AcceptedIdentical;
            } else {
                outcome = Outcome::Failure;
                note = "accepted payload re-encoded differently (" +
                       std::to_string(blob.size()) + " -> " +
                       std::to_string(reencoded.size()) + " bytes)";
            }
        } catch (const ErrorT &) {
            outcome = Outcome::TypedError;
        } catch (const std::exception &e) {
            outcome = Outcome::Failure;
            note = std::string("escaped non-typed exception: ") + e.what();
        } catch (...) {
            outcome = Outcome::Failure;
            note = "escaped unknown exception";
        }

        switch (outcome) {
        case Outcome::TypedError:
            rep.typedErrors++;
            rep.perKindTyped[static_cast<std::size_t>(kind)]++;
            m_typed.increment();
            break;
        case Outcome::AcceptedIdentical:
            rep.acceptedIdentical++;
            m_accepted.increment();
            break;
        case Outcome::Failure:
            rep.failures++;
            m_failures.increment();
            if (rep.failureNotes.size() < cfg.maxArtifacts) {
                rep.failureNotes.push_back(
                    "iter " + std::to_string(i) + " [" + toString(kind) +
                    "]: " + note);
                writeArtifact(dir, format, cfg, i, kind, blob, note);
            }
            break;
        }
    }
    return rep;
}

} // namespace

const char *
toString(Mutation m)
{
    switch (m) {
    case Mutation::None: return "none";
    case Mutation::TruncateHeader: return "truncate-header";
    case Mutation::TruncateRaw: return "truncate-raw";
    case Mutation::TruncateResealed: return "truncate-resealed";
    case Mutation::HeaderByte: return "header-byte";
    case Mutation::BitFlipRaw: return "bit-flip-raw";
    case Mutation::BitFlipResealed: return "bit-flip-resealed";
    case Mutation::ByteSplatResealed: return "byte-splat-resealed";
    case Mutation::Word32Resealed: return "word32-resealed";
    case Mutation::AppendResealed: return "append-resealed";
    }
    return "unknown";
}

void
resealFramed(std::string &blob)
{
    if (blob.size() < framedHeaderBytes)
        return;
    const std::string payload = blob.substr(framedHeaderBytes);
    patchU32(blob, 8, static_cast<std::uint32_t>(payload.size()));
    patchU32(blob, 12, fnv1a32(payload));
}

void
resealChunked(std::string &blob)
{
    std::size_t pos = 0;
    while (blob.size() - pos >= framedHeaderBytes &&
           blob.size() >= framedHeaderBytes) {
        std::uint32_t declared = 0;
        for (int i = 0; i < 4; ++i)
            declared |= static_cast<std::uint32_t>(
                            static_cast<unsigned char>(blob[pos + 8 + i]))
                        << (8 * i);
        const std::size_t avail = blob.size() - pos - framedHeaderBytes;
        if (declared > avail) {
            // Damaged tail frame (truncated payload or a size lie past
            // EOF): reseal over the bytes actually present, so the
            // frame passes its checksum and the structural validation
            // — sequence fields, totals, EOF — has to catch it.
            patchU32(blob, pos + 8, static_cast<std::uint32_t>(avail));
            patchU32(blob, pos + 12,
                     fnv1a32(blob.substr(pos + framedHeaderBytes)));
            return;
        }
        patchU32(blob, pos + 12,
                 fnv1a32(blob.substr(pos + framedHeaderBytes, declared)));
        pos += framedHeaderBytes + declared;
    }
    // A sub-header tail (< 16 bytes) stays as-is: trailing garbage the
    // reader's finish() must reject.
}

std::string
applyMutation(const std::string &good, Mutation kind, std::uint64_t seed,
              std::uint64_t iteration, Framing framing)
{
    Rng rng = Rng(seed).fork(iteration);
    (void)rng.index(numMutationKinds); // the engine's kind draw
    return mutate(good, kind, rng, framing);
}

FuzzReport
fuzzTraceFormat(const std::string &goodBlob, const FuzzConfig &cfg)
{
    return fuzzBlob<TraceIoError>(
        "trace", goodBlob,
        [](const std::string &blob) {
            std::istringstream iss(blob, std::ios::binary);
            const Trace t = readTrace(iss);
            std::ostringstream oss(std::ios::binary);
            writeTrace(t, oss);
            return oss.str();
        },
        cfg);
}

FuzzReport
fuzzSubsetFormat(const std::string &goodBlob, const FuzzConfig &cfg)
{
    return fuzzBlob<SubsetIoError>(
        "subset", goodBlob,
        [](const std::string &blob) {
            std::istringstream iss(blob, std::ios::binary);
            const WorkloadSubset s = readSubset(iss);
            std::ostringstream oss(std::ios::binary);
            writeSubset(s, oss);
            return oss.str();
        },
        cfg);
}

FuzzReport
fuzzWtrcFormat(const std::string &goodBlob, const FuzzConfig &cfg)
{
    return fuzzBlob<WtrcError>(
        "wtrc", goodBlob,
        [](const std::string &blob) {
            // Decode the full container (finish() validates totals
            // and EOF), then re-encode chunk for chunk: raw column
            // doubles round-trip bitwise, so any accepted blob must
            // come back byte-identical.
            std::istringstream iss(blob, std::ios::binary);
            WtrcReader reader(iss);
            std::vector<WtrcChunk> chunks;
            chunks.reserve(reader.chunkCount());
            for (std::uint32_t c = 0; c < reader.chunkCount(); ++c)
                chunks.push_back(reader.readChunk());
            reader.finish();

            std::ostringstream oss(std::ios::binary);
            WtrcWriter writer(oss, reader.capacityKey());
            for (const WtrcChunk &chunk : chunks) {
                const double *cols[wtrcColumnCount];
                for (std::size_t c = 0; c < wtrcColumnCount; ++c)
                    cols[c] = chunk.column(c);
                writer.appendChunk(chunk.groupSizes, cols, chunk.rows);
            }
            writer.finish();
            return oss.str();
        },
        cfg, Framing::Chunked);
}

std::string
FuzzReport::summary() const
{
    std::string out = format + " fuzz: " + std::to_string(iterations) +
                      " iterations, " + std::to_string(typedErrors) +
                      " typed errors, " +
                      std::to_string(acceptedIdentical) +
                      " accepted identical, " + std::to_string(failures) +
                      " failures\n";
    for (std::size_t k = 0; k < numMutationKinds; ++k) {
        if (perKind[k] == 0)
            continue;
        out += "  " + std::string(toString(static_cast<Mutation>(k))) +
               ": " + std::to_string(perKind[k]) + " applied, " +
               std::to_string(perKindTyped[k]) + " typed errors\n";
    }
    for (const auto &n : failureNotes)
        out += "  FAILURE " + n + "\n";
    return out;
}

} // namespace fuzz
} // namespace gws
