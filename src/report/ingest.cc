#include "report/ingest.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <unordered_map>

#include "obs/metrics_text.hh"

namespace gws {
namespace report {

namespace {

/** A JSON number coerced to u64 (rejects negatives and non-finite). */
std::uint64_t
asUint(const JsonValue &v, const char *what)
{
    const double d = v.number();
    if (!std::isfinite(d) || d < 0)
        throw ReportError(std::string("report: ") + what +
                          " must be a non-negative number");
    return static_cast<std::uint64_t>(d);
}

/** Microseconds (trace-file unit) to integral nanoseconds. */
std::uint64_t
usToNs(double us)
{
    if (!std::isfinite(us) || us < 0)
        return 0;
    return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

} // namespace

std::size_t
TraceData::countPhase(char phase) const
{
    std::size_t n = 0;
    for (const TraceSpan &ev : events)
        if (ev.phase == phase)
            ++n;
    return n;
}

TraceData
readPerfettoTraceText(const std::string &text)
{
    const JsonValue root = parseJson(text);
    const JsonValue &events = root.at("traceEvents");
    if (!events.isArray())
        throw ReportError("report: traceEvents must be an array");

    TraceData out;
    out.events.reserve(events.array().size());
    for (const JsonValue &ev : events.array()) {
        if (!ev.isObject())
            throw ReportError("report: trace event must be an object");
        const std::string &ph = ev.at("ph").string();
        if (ph.size() != 1)
            throw ReportError("report: trace event ph must be a "
                              "single character, got \"" + ph + "\"");

        TraceSpan span;
        span.phase = ph[0];
        span.name = ev.at("name").string();
        span.tid = static_cast<std::uint32_t>(
            asUint(ev.at("tid"), "trace event tid"));
        span.startNs = usToNs(ev.at("ts").number());
        switch (span.phase) {
          case 'X':
            span.durationNs = usToNs(ev.at("dur").number());
            break;
          case 's':
          case 'f':
            span.flowId = asUint(ev.at("id"), "trace flow id");
            break;
          case 'i':
            if (const JsonValue *args = ev.find("args"))
                if (const JsonValue *detail = args->find("detail"))
                    span.detail = detail->string();
            break;
          default:
            // Foreign phases (metadata, counters, ...) pass through
            // untyped so traces merged with other tools still load.
            break;
        }
        out.events.push_back(std::move(span));
    }

    // The tracer writes a chunk span as an "X" record plus a
    // companion "f" flow-finish record with identical name/tid/ts;
    // fold the flow id back onto the span so the analysis passes see
    // chunks directly (an "f" with no twin is left as-is).
    std::unordered_map<std::string, std::vector<std::size_t>> spansAt;
    auto spanKey = [](const TraceSpan &ev) {
        return ev.name + '\0' + std::to_string(ev.tid) + '\0' +
               std::to_string(ev.startNs);
    };
    for (std::size_t i = 0; i < out.events.size(); ++i)
        if (out.events[i].phase == 'X')
            spansAt[spanKey(out.events[i])].push_back(i);
    for (const TraceSpan &ev : out.events) {
        if (ev.phase != 'f')
            continue;
        auto it = spansAt.find(spanKey(ev));
        if (it == spansAt.end())
            continue;
        for (std::size_t idx : it->second) {
            if (out.events[idx].flowId == 0) {
                out.events[idx].flowId = ev.flowId;
                break;
            }
        }
    }
    return out;
}

TraceData
readPerfettoTraceFile(const std::string &path)
{
    try {
        return readPerfettoTraceText(readFileBounded(path));
    } catch (const ReportError &e) {
        throw ReportError(path + ": " + e.what(), e.byteOffset());
    }
}

const MetricRow *
MetricsData::find(const std::string &name) const
{
    const std::string mapped = obs::prometheusName(name);
    for (const MetricRow &row : rows)
        if (row.name == name || row.name == mapped)
            return &row;
    return nullptr;
}

std::vector<const MetricRow *>
MetricsData::withPrefix(const std::string &prefix) const
{
    const std::string mapped = obs::prometheusName(prefix);
    std::vector<const MetricRow *> out;
    for (const MetricRow &row : rows)
        if (row.name.compare(0, prefix.size(), prefix) == 0 ||
            row.name.compare(0, mapped.size(), mapped) == 0)
            out.push_back(&row);
    return out;
}

MetricsData
readMetricsJsonText(const std::string &text)
{
    const JsonValue root = parseJson(text);
    const std::string &schema = root.at("schema").string();
    if (schema != "gws.metrics.v1")
        throw ReportError("report: unsupported metrics schema \"" +
                          schema + "\"");

    MetricsData out;
    for (const JsonValue &m : root.at("metrics").array()) {
        MetricRow row;
        row.name = m.at("name").string();
        row.type = m.at("type").string();
        if (row.type == "counter" || row.type == "gauge") {
            row.value = m.at("value").number();
        } else if (row.type == "info") {
            row.info = m.at("value").string();
        } else if (row.type == "histogram") {
            row.count = asUint(m.at("count"), "histogram count");
            row.sum = m.at("sum").number();
            if (const JsonValue *q = m.find("p50"))
                row.p50 = q->number();
            if (const JsonValue *q = m.find("p95"))
                row.p95 = q->number();
            if (const JsonValue *q = m.find("p99"))
                row.p99 = q->number();
            for (const JsonValue &b : m.at("buckets").array()) {
                MetricRow::Bucket bucket;
                bucket.lo = asUint(b.at("lo"), "bucket lo");
                bucket.hi = asUint(b.at("hi"), "bucket hi");
                bucket.count = asUint(b.at("count"), "bucket count");
                row.buckets.push_back(bucket);
            }
        } else {
            throw ReportError("report: unknown metric type \"" +
                              row.type + "\" for " + row.name);
        }
        out.rows.push_back(std::move(row));
    }
    return out;
}

namespace {

/** One Prometheus sample line, split into parts. */
struct PromSample
{
    std::string name;
    std::string labels; // raw text between the braces, may be empty
    double value = 0.0;
};

bool
parsePromLine(const std::string &line, PromSample &out,
              std::size_t lineNo)
{
    std::size_t i = 0;
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t'))
        ++i;
    if (i >= line.size() || line[i] == '#')
        return false; // blank or comment

    const std::size_t nameStart = i;
    while (i < line.size() && line[i] != '{' && line[i] != ' ' &&
           line[i] != '\t')
        ++i;
    out.name = line.substr(nameStart, i - nameStart);
    if (out.name.empty())
        throw ReportError("report: prometheus line " +
                          std::to_string(lineNo) +
                          ": missing metric name");

    out.labels.clear();
    if (i < line.size() && line[i] == '{') {
        const std::size_t close = line.find('}', i);
        if (close == std::string::npos)
            throw ReportError("report: prometheus line " +
                              std::to_string(lineNo) +
                              ": unterminated label set");
        out.labels = line.substr(i + 1, close - i - 1);
        i = close + 1;
    }

    while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
        ++i;
    if (i >= line.size())
        throw ReportError("report: prometheus line " +
                          std::to_string(lineNo) + ": missing value");
    errno = 0;
    char *end = nullptr;
    out.value = std::strtod(line.c_str() + i, &end);
    if (end == line.c_str() + i)
        throw ReportError("report: prometheus line " +
                          std::to_string(lineNo) +
                          ": unparseable value");
    return true;
}

/** The value of label `key` within a raw label-set string, or "". */
std::string
promLabel(const std::string &labels, const std::string &key)
{
    const std::string needle = key + "=\"";
    const std::size_t at = labels.find(needle);
    if (at == std::string::npos)
        return "";
    std::string out;
    std::size_t i = at + needle.size();
    while (i < labels.size() && labels[i] != '"') {
        if (labels[i] == '\\' && i + 1 < labels.size()) {
            ++i;
            out.push_back(labels[i] == 'n' ? '\n' : labels[i]);
        } else {
            out.push_back(labels[i]);
        }
        ++i;
    }
    return out;
}

bool
stripSuffix(std::string &name, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    if (name.size() <= n ||
        name.compare(name.size() - n, n, suffix) != 0)
        return false;
    name.resize(name.size() - n);
    return true;
}

} // namespace

MetricsData
readMetricsPrometheusText(const std::string &text)
{
    MetricsData out;
    // Rows index by base name as they are discovered; the exporter
    // writes each histogram's _bucket series before its _sum/_count/
    // _p* samples, so attaching suffixes to the existing row works.
    auto rowFor = [&out](const std::string &base,
                         const char *type) -> MetricRow & {
        for (MetricRow &row : out.rows)
            if (row.name == base)
                return row;
        MetricRow row;
        row.name = base;
        row.type = type;
        out.rows.push_back(std::move(row));
        return out.rows.back();
    };
    auto histogramFor =
        [&out](const std::string &base) -> MetricRow * {
        for (MetricRow &row : out.rows)
            if (row.name == base && row.type == "histogram")
                return &row;
        return nullptr;
    };

    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string line =
            text.substr(pos, nl == std::string::npos ? std::string::npos
                                                     : nl - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++lineNo;

        PromSample s;
        if (!parsePromLine(line, s, lineNo))
            continue;

        std::string base = s.name;
        if (stripSuffix(base, "_bucket")) {
            const std::string le = promLabel(s.labels, "le");
            MetricRow &row = rowFor(base, "histogram");
            if (le != "+Inf") {
                MetricRow::Bucket b;
                errno = 0;
                b.hi = std::strtoull(le.c_str(), nullptr, 10);
                // Cumulative on the wire; de-cumulated below.
                b.count = static_cast<std::uint64_t>(s.value);
                b.lo = row.buckets.empty()
                           ? 0
                           : row.buckets.back().hi + 1;
                row.buckets.push_back(b);
            }
            continue;
        }
        base = s.name;
        if (stripSuffix(base, "_sum") && histogramFor(base)) {
            histogramFor(base)->sum = s.value;
            continue;
        }
        base = s.name;
        if (stripSuffix(base, "_count") && histogramFor(base)) {
            histogramFor(base)->count =
                static_cast<std::uint64_t>(s.value);
            continue;
        }
        base = s.name;
        if (stripSuffix(base, "_p50") && histogramFor(base)) {
            histogramFor(base)->p50 = s.value;
            continue;
        }
        base = s.name;
        if (stripSuffix(base, "_p95") && histogramFor(base)) {
            histogramFor(base)->p95 = s.value;
            continue;
        }
        base = s.name;
        if (stripSuffix(base, "_p99") && histogramFor(base)) {
            histogramFor(base)->p99 = s.value;
            continue;
        }
        base = s.name;
        if (stripSuffix(base, "_total")) {
            MetricRow &row = rowFor(base, "counter");
            row.value = s.value;
            continue;
        }
        const std::string info = promLabel(s.labels, "value");
        if (!info.empty()) {
            MetricRow &row = rowFor(s.name, "info");
            row.info = info;
            continue;
        }
        MetricRow &row = rowFor(s.name, "gauge");
        row.value = s.value;
    }

    // Wire buckets are cumulative; the model's are not.
    for (MetricRow &row : out.rows) {
        if (row.type != "histogram")
            continue;
        std::uint64_t prev = 0;
        for (MetricRow::Bucket &b : row.buckets) {
            const std::uint64_t cum = b.count;
            b.count = cum >= prev ? cum - prev : 0;
            prev = cum;
        }
    }
    return out;
}

MetricsData
readMetricsText(const std::string &text)
{
    for (char c : text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            continue;
        return c == '{' ? readMetricsJsonText(text)
                        : readMetricsPrometheusText(text);
    }
    throw ReportError("report: empty metrics input");
}

MetricsData
readMetricsFile(const std::string &path)
{
    try {
        return readMetricsText(readFileBounded(path));
    } catch (const ReportError &e) {
        throw ReportError(path + ": " + e.what(), e.byteOffset());
    }
}

BenchEnvelope
readBenchEnvelopeText(const std::string &text, const std::string &path)
{
    const JsonValue root = parseJson(text);
    const std::string &schema = root.at("schema").string();
    if (schema != "gws.bench.v1")
        throw ReportError("report: unsupported bench schema \"" +
                          schema + "\"");

    BenchEnvelope env;
    env.path = path;
    env.bench = root.at("bench").string();
    env.git = root.at("git").string();
    env.threads = asUint(root.at("threads"), "bench threads");
    env.wallMs = root.at("wall_ms").number();
    env.peakRssBytes =
        asUint(root.at("peak_rss_bytes"), "bench peak_rss_bytes");
    env.results = root.at("results");
    if (!env.results.isObject())
        throw ReportError("report: bench results must be an object");
    return env;
}

BenchEnvelope
readBenchEnvelopeFile(const std::string &path)
{
    try {
        return readBenchEnvelopeText(readFileBounded(path), path);
    } catch (const ReportError &e) {
        throw ReportError(path + ": " + e.what(), e.byteOffset());
    }
}

std::vector<BenchEnvelope>
loadBenchDir(const std::string &dir)
{
    DIR *dp = ::opendir(dir.c_str());
    if (dp == nullptr)
        throw ReportError("report: cannot open bench directory " +
                          dir);
    std::vector<std::string> names;
    while (struct dirent *de = ::readdir(dp)) {
        const std::string name = de->d_name;
        if (name.size() > 11 &&
            name.compare(0, 6, "BENCH_") == 0 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            names.push_back(name);
    }
    ::closedir(dp);
    std::sort(names.begin(), names.end());

    std::vector<BenchEnvelope> out;
    for (const std::string &name : names) {
        const std::string path = dir + "/" + name;
        try {
            out.push_back(readBenchEnvelopeFile(path));
        } catch (const ReportError &e) {
            // One bad artifact should not sink the whole report.
            std::fprintf(stderr, "gws_report: skipping %s: %s\n",
                         path.c_str(), e.what());
        }
    }
    return out;
}

} // namespace report
} // namespace gws
