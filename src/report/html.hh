/**
 * @file
 * Self-contained HTML widgets for the execution dashboard.
 *
 * Everything the page needs — styles, charts, data — is emitted
 * inline: charts are hand-rolled SVG, styling is one embedded
 * stylesheet, and there are no scripts that fetch anything, so the
 * generated report opens from file:// on an air-gapped machine and
 * never phones home (the self-containment test greps the output for
 * URL schemes). The widgets here are layout-free building blocks;
 * report.cc composes them into panels.
 */

#ifndef GWS_REPORT_HTML_HH
#define GWS_REPORT_HTML_HH

#include <cstdint>
#include <string>

#include "report/analysis.hh"

namespace gws {
namespace report {

/** Escape &, <, >, and double quotes for HTML text/attributes. */
std::string htmlEscape(const std::string &s);

/** Human duration from nanoseconds, e.g. "1.24 ms", "3.5 s". */
std::string humanNs(std::uint64_t ns);

/**
 * Per-thread occupancy tracks as one inline SVG: a horizontal bar
 * per thread, shaded by busy fraction per time bin.
 */
std::string svgOccupancyTracks(const UtilizationTimeline &tl);

/**
 * Stacked per-stage self-time area chart (one band per stage, in
 * stageNames order) over the same bins.
 */
std::string svgStageArea(const UtilizationTimeline &tl);

/** A heatmap as a shaded HTML table (color ramps over the value
 *  range of the whole map). */
std::string heatmapTable(const Heatmap &hm);

/**
 * Cluster-quality scatter: one point per family, mean error (x) vs
 * mean efficiency (y); families missing either facet are skipped.
 */
std::string svgClusterScatter(
    const std::vector<ClusterQualityRow> &rows);

/** Document shell up to the opening of <body>. `refreshSeconds` > 0
 *  embeds a same-document meta refresh (live mode). */
std::string htmlHeader(const std::string &title, int refreshSeconds);

/** Closing boilerplate matching htmlHeader(). */
std::string htmlFooter();

} // namespace report
} // namespace gws

#endif // GWS_REPORT_HTML_HH
