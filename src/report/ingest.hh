/**
 * @file
 * Readers for the three artifact families the report consumes:
 *
 *  - Perfetto/Chrome trace-event JSON, as written by
 *    obs::writeChromeTrace() ("X" complete spans, "s" flow starts,
 *    "f" flow finishes, "i" instants; microsecond timestamps);
 *  - metrics snapshots, either gws.metrics.v1 JSON
 *    (MetricsRegistry::toJson()) or Prometheus text exposition
 *    (metricsPrometheusText()) — the format is sniffed from the first
 *    non-whitespace byte;
 *  - gws.bench.v1 envelopes (BenchJsonWriter), loaded singly or as a
 *    whole results/ directory of BENCH_*.json files.
 *
 * Everything goes through the strict parser in report/json.hh, so a
 * truncated or corrupted artifact fails with a typed ReportError and
 * a byte offset instead of a half-built model. Readers are tolerant
 * of *extra* fields (future exporters may add keys) but strict about
 * the shape of the fields they do consume.
 */

#ifndef GWS_REPORT_INGEST_HH
#define GWS_REPORT_INGEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "report/json.hh"

namespace gws {
namespace report {

/** One trace event, flattened from the Chrome-trace record. */
struct TraceSpan
{
    /** Span / event name. */
    std::string name;

    /** Instant detail (args.detail), empty otherwise. */
    std::string detail;

    /** Chrome phase: 'X' complete, 's' flow start, 'f' flow finish,
     *  'i' instant. */
    char phase = 'X';

    /** Track (thread) id. */
    std::uint32_t tid = 0;

    /** Start time in ns (the file stores µs; converted on read). */
    std::uint64_t startNs = 0;

    /** Duration in ns ('X' events only). */
    std::uint64_t durationNs = 0;

    /** Flow id: set on 's'/'f' events, and folded onto an 'X' span
     *  from its companion 'f' record (same name/tid/ts). 0 = none. */
    std::uint64_t flowId = 0;
};

/** A parsed trace file. */
struct TraceData
{
    /** All events, in file order. */
    std::vector<TraceSpan> events;

    /** Count of events with a given phase. */
    std::size_t countPhase(char phase) const;
};

/** Parse Chrome trace-event JSON text. Throws ReportError. */
TraceData readPerfettoTraceText(const std::string &text);

/** readPerfettoTraceText() over a file's contents. */
TraceData readPerfettoTraceFile(const std::string &path);

/** One metric in a snapshot, normalised across both wire formats. */
struct MetricRow
{
    struct Bucket
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        std::uint64_t count = 0;
    };

    /** Name as the source spelled it (dotted in JSON, underscored
     *  in Prometheus text). */
    std::string name;

    /** "counter", "gauge", "histogram", or "info". */
    std::string type;

    /** Counter / gauge payload. */
    double value = 0.0;

    /** Info annotation string. */
    std::string info;

    /** Histogram observation count. */
    std::uint64_t count = 0;

    /** Histogram observation sum. */
    double sum = 0.0;

    /** Exporter-side quantile estimates. */
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    /** Non-cumulative log2 buckets (may be empty for Prometheus
     *  input if the series was truncated). */
    std::vector<Bucket> buckets;
};

/** A parsed metrics snapshot. */
struct MetricsData
{
    std::vector<MetricRow> rows;

    /**
     * Look up a metric by its dotted name. Prometheus-sourced rows
     * match through the same charset mapping the exporter applies
     * (dots -> underscores, counters' "_total" suffix), so callers
     * always query with the registry spelling, e.g.
     * "gws.part.shard_imbalance".
     */
    const MetricRow *find(const std::string &name) const;

    /** All rows whose dotted-name lookup form starts with `prefix`. */
    std::vector<const MetricRow *>
    withPrefix(const std::string &prefix) const;
};

/** Parse a gws.metrics.v1 JSON document. Throws ReportError. */
MetricsData readMetricsJsonText(const std::string &text);

/** Parse Prometheus text exposition. Throws ReportError. */
MetricsData readMetricsPrometheusText(const std::string &text);

/** Sniff the format ('{' = JSON, else Prometheus) and parse. */
MetricsData readMetricsText(const std::string &text);

/** readMetricsText() over a file's contents. */
MetricsData readMetricsFile(const std::string &path);

/** One gws.bench.v1 envelope. */
struct BenchEnvelope
{
    /** Bench name ("fig7_freq_scaling", ...). */
    std::string bench;

    /** git describe of the producing build. */
    std::string git;

    /** Worker threads the run used. */
    std::uint64_t threads = 0;

    /** Process wall time. */
    double wallMs = 0.0;

    /** Peak RSS of the run. */
    std::uint64_t peakRssBytes = 0;

    /** The bench-specific results object (kind Object). */
    JsonValue results;

    /** Source path (for provenance lines in the report). */
    std::string path;
};

/** Parse one envelope. Throws ReportError (schema checked). */
BenchEnvelope readBenchEnvelopeText(const std::string &text,
                                    const std::string &path);

/** readBenchEnvelopeText() over a file. */
BenchEnvelope readBenchEnvelopeFile(const std::string &path);

/**
 * Load every BENCH_*.json in `dir`, sorted by filename. Unreadable
 * or malformed files are skipped with a warning on stderr (one bad
 * artifact should not sink the whole report); a missing directory is
 * a ReportError.
 */
std::vector<BenchEnvelope> loadBenchDir(const std::string &dir);

} // namespace report
} // namespace gws

#endif // GWS_REPORT_INGEST_HH
