/**
 * @file
 * Span analytics over ingested artifacts.
 *
 * The Chrome trace is a flat event list; analysis rebuilds structure
 * from it in three steps:
 *
 *  1. buildSpanForest() — per-thread interval nesting (sort by start
 *     ascending / duration descending, then a stack sweep) recovers
 *     the span tree each thread recorded, plus self time (duration
 *     minus direct children).
 *
 *  2. computeUtilization() — bins the timeline and measures, per
 *     thread, the fraction of each bin covered by root spans
 *     (occupancy), and per stage (span name), the self-time density
 *     landing in each bin. This is the data behind the dashboard's
 *     per-stage utilization tracks.
 *
 *  3. computeAttribution() — bottleneck attribution. Self time ranks
 *     spans by where wall time was actually spent; the critical path
 *     stitches parallelFor fan-outs through their flow ids: every
 *     chunk span carries the flow id of the submitting call, the
 *     "owner" of a fan-out is the deepest span on the submitting
 *     thread containing the flow-start timestamp, and the fan-out
 *     contributes max-over-chunks (not sum) to its owner's path.
 *     parallelSavedNs = Σ(sum - max) over fan-outs is the wall time
 *     parallelism actually removed from the critical path.
 *
 * Bench-envelope extractors (heatmaps, cluster-quality rows) live
 * here too so the HTML layer renders pre-digested structs only.
 */

#ifndef GWS_REPORT_ANALYSIS_HH
#define GWS_REPORT_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "report/ingest.hh"

namespace gws {
namespace report {

/** One node of the rebuilt span forest. */
struct SpanNode
{
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Span name. */
    std::string name;

    /** Start, ns since trace begin. */
    std::uint64_t startNs = 0;

    /** Wall duration. */
    std::uint64_t durationNs = 0;

    /** Duration minus direct children's duration. */
    std::uint64_t selfNs = 0;

    /** Recording thread's dense id. */
    std::uint32_t tid = 0;

    /** Nesting depth on its thread (0 = root). */
    std::uint32_t depth = 0;

    /** Fan-out flow id carried by chunk spans (0 = none). */
    std::uint64_t flowId = 0;

    /** Parent node index, npos for roots. */
    std::size_t parent = npos;

    /** Child node indices, in start order. */
    std::vector<std::size_t> children;
};

/** A flow-start marker (fan-out source). */
struct FlowStartEvent
{
    std::uint64_t flowId = 0;
    std::uint64_t tsNs = 0;
    std::uint32_t tid = 0;
};

/** The rebuilt forest plus timeline extents. */
struct SpanForest
{
    std::vector<SpanNode> nodes;

    /** Root node indices (all threads), in start order. */
    std::vector<std::size_t> roots;

    /** Flow starts, in file order. */
    std::vector<FlowStartEvent> flowStarts;

    /** Number of distinct thread tracks (max tid + 1). */
    std::uint32_t threads = 0;

    /** Timeline extent over all complete spans. */
    std::uint64_t minStartNs = 0;
    std::uint64_t maxEndNs = 0;
};

/** Rebuild span trees from a flat trace. */
SpanForest buildSpanForest(const TraceData &trace);

/** Binned occupancy tracks. */
struct UtilizationTimeline
{
    /** Timeline extent the bins cover. */
    std::uint64_t t0Ns = 0;
    std::uint64_t t1Ns = 0;

    /** Bin width (ns); bins.size() == binCount for every track. */
    std::uint64_t binNs = 0;

    /** perThread[tid][bin] = fraction of the bin covered by that
     *  thread's root spans (0..1). */
    std::vector<std::vector<double>> perThread;

    /** Stage (span name) labels, busiest first; the last entry may
     *  be "(other)" aggregating the tail. */
    std::vector<std::string> stageNames;

    /** perStage[stage][bin] = self-time ns landing in the bin,
     *  summed across threads. */
    std::vector<std::vector<double>> perStage;

    /** Mean occupancy across threads per bin (0..1). */
    std::vector<double> meanOccupancy;
};

/**
 * Bin the forest's timeline into `bins` slices and compute occupancy
 * per thread and self-time density per stage (top `maxStages` names
 * by total self time; the rest fold into "(other)").
 */
UtilizationTimeline computeUtilization(const SpanForest &forest,
                                       std::size_t bins,
                                       std::size_t maxStages);

/** Per-span-name attribution row. */
struct AttributionRow
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t selfNs = 0;

    /** Self time this name contributed on the critical path. */
    std::uint64_t criticalNs = 0;
};

/** Bottleneck attribution over the whole forest. */
struct Attribution
{
    /** Rows sorted by descending critical-path contribution, then
     *  self time. */
    std::vector<AttributionRow> rows;

    /** Wall extent of the trace (maxEnd - minStart). */
    std::uint64_t wallNs = 0;

    /** Length of the flow-stitched critical path. */
    std::uint64_t criticalPathNs = 0;

    /** Wall time parallel fan-outs removed from the critical path
     *  (Σ over fan-outs of chunk-sum minus chunk-max). */
    std::uint64_t parallelSavedNs = 0;

    /** Fan-outs stitched through flow ids. */
    std::size_t fanOuts = 0;

    /** Chunk spans that carried a flow id with no matching start
     *  (counted, still attributed as roots). */
    std::size_t orphanChunks = 0;
};

/** Compute self-time + critical-path attribution. */
Attribution computeAttribution(const SpanForest &forest);

/** A config × workload heatmap lifted from a bench envelope. */
struct Heatmap
{
    std::string title;
    std::string source; ///< bench name it came from
    std::vector<std::string> rowLabels;
    std::vector<std::string> colLabels;

    /** values[row][col]; rows × cols rectangular. */
    std::vector<std::vector<double>> values;
};

/**
 * Collect every envelope's results.heatmap object
 * ({"title", "rows": [...], "cols": [...], "values": [[...], ...]}).
 * Malformed heatmaps throw ReportError.
 */
std::vector<Heatmap> extractHeatmaps(
    const std::vector<BenchEnvelope> &benches);

/** Cluster-quality row joined across fig2/fig3 family keys. */
struct ClusterQualityRow
{
    std::string family;

    /** NaN when the producing bench was not in the input set. */
    double meanErrorPct;
    double meanEfficiencyPct;
    double outlierPct;
    double clusters;
};

/**
 * Join `family_<algo>_{mean_error_pct, mean_efficiency_pct,
 * outlier_pct, clusters}` keys across all envelopes into one row per
 * clustering family. Missing facets stay NaN.
 */
std::vector<ClusterQualityRow> extractClusterQuality(
    const std::vector<BenchEnvelope> &benches);

} // namespace report
} // namespace gws

#endif // GWS_REPORT_ANALYSIS_HH
