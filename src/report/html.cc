#include "report/html.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hh"

namespace gws {
namespace report {

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

std::string
humanNs(std::uint64_t ns)
{
    const double v = static_cast<double>(ns);
    if (v >= 1e9)
        return formatDouble(v * 1e-9, 2) + " s";
    if (v >= 1e6)
        return formatDouble(v * 1e-6, 2) + " ms";
    if (v >= 1e3)
        return formatDouble(v * 1e-3, 2) + " \xC2\xB5s"; // µs
    return std::to_string(ns) + " ns";
}

namespace {

/** The dashboard's categorical palette (stage bands, scatter dots). */
const char *const palette[] = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#9c755f", "#bab0ac", "#d37295",
};
constexpr std::size_t paletteSize =
    sizeof(palette) / sizeof(palette[0]);

std::string
fmt(double v, int precision = 2)
{
    return formatDouble(v, precision);
}

/** Linear ramp from pale to saturated blue for heatmap cells. */
std::string
rampColor(double t)
{
    t = std::min(1.0, std::max(0.0, t));
    const int r = static_cast<int>(247 - t * (247 - 33));
    const int g = static_cast<int>(251 - t * (251 - 102));
    const int b = static_cast<int>(255 - t * (255 - 172));
    char buf[16];
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
    return buf;
}

} // namespace

std::string
svgOccupancyTracks(const UtilizationTimeline &tl)
{
    if (tl.perThread.empty() || tl.perThread[0].empty())
        return "<p class=\"empty\">no trace data</p>\n";

    const std::size_t bins = tl.perThread[0].size();
    const std::size_t threads = tl.perThread.size();
    const double width = 900.0;
    const double trackH = 18.0;
    const double gap = 4.0;
    const double left = 60.0;
    const double height =
        static_cast<double>(threads) * (trackH + gap) + 24.0;
    const double binW =
        (width - left) / static_cast<double>(bins);

    std::ostringstream os;
    os << "<svg viewBox=\"0 0 " << width << " " << height
       << "\" role=\"img\" class=\"chart\">\n";
    for (std::size_t t = 0; t < threads; ++t) {
        const double y =
            static_cast<double>(t) * (trackH + gap) + 4.0;
        os << "<text x=\"4\" y=\"" << fmt(y + trackH - 5.0)
           << "\" class=\"lbl\">t" << t << "</text>\n";
        for (std::size_t b = 0; b < bins; ++b) {
            const double occ = tl.perThread[t][b];
            if (occ <= 0.0)
                continue;
            os << "<rect x=\"" << fmt(left + binW * b) << "\" y=\""
               << fmt(y) << "\" width=\"" << fmt(binW + 0.5)
               << "\" height=\"" << trackH
               << "\" fill=\"#4e79a7\" fill-opacity=\""
               << fmt(0.15 + 0.85 * occ) << "\"/>\n";
        }
    }
    os << "<text x=\"" << left << "\" y=\"" << fmt(height - 6.0)
       << "\" class=\"lbl\">0</text>\n"
       << "<text x=\"" << fmt(width - 4.0) << "\" y=\""
       << fmt(height - 6.0) << "\" text-anchor=\"end\" "
       << "class=\"lbl\">" << htmlEscape(humanNs(tl.t1Ns - tl.t0Ns))
       << "</text>\n</svg>\n";
    return os.str();
}

std::string
svgStageArea(const UtilizationTimeline &tl)
{
    if (tl.perStage.empty() || tl.perStage[0].empty())
        return "<p class=\"empty\">no trace data</p>\n";

    const std::size_t bins = tl.perStage[0].size();
    const std::size_t stages = tl.perStage.size();
    const double width = 900.0;
    const double height = 180.0;
    const double left = 8.0;
    const double binW = (width - left) / static_cast<double>(bins);

    // Normalise stack heights to the busiest bin.
    double peak = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
        double sum = 0.0;
        for (std::size_t s = 0; s < stages; ++s)
            sum += tl.perStage[s][b];
        peak = std::max(peak, sum);
    }
    if (peak <= 0.0)
        return "<p class=\"empty\">no self time recorded</p>\n";

    std::ostringstream os;
    os << "<svg viewBox=\"0 0 " << width << " " << (height + 20.0)
       << "\" role=\"img\" class=\"chart\">\n";
    std::vector<double> base(bins, 0.0);
    for (std::size_t s = 0; s < stages; ++s) {
        std::ostringstream pts;
        // Bottom edge left-to-right, then top edge back.
        for (std::size_t b = 0; b < bins; ++b)
            pts << fmt(left + binW * (b + 0.5)) << ","
                << fmt(height - height * base[b] / peak) << " ";
        for (std::size_t b = bins; b-- > 0;) {
            base[b] += tl.perStage[s][b];
            pts << fmt(left + binW * (b + 0.5)) << ","
                << fmt(height - height * base[b] / peak) << " ";
        }
        os << "<polygon points=\"" << pts.str() << "\" fill=\""
           << palette[s % paletteSize]
           << "\" fill-opacity=\"0.85\"/>\n";
    }
    os << "</svg>\n<div class=\"legend\">";
    for (std::size_t s = 0; s < stages; ++s)
        os << "<span><i style=\"background:"
           << palette[s % paletteSize] << "\"></i>"
           << htmlEscape(tl.stageNames[s]) << "</span> ";
    os << "</div>\n";
    return os.str();
}

std::string
heatmapTable(const Heatmap &hm)
{
    double lo = 0.0, hi = 0.0;
    bool any = false;
    for (const auto &row : hm.values)
        for (double v : row) {
            if (!any) {
                lo = hi = v;
                any = true;
            }
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    const double span = hi > lo ? hi - lo : 1.0;

    std::ostringstream os;
    os << "<table class=\"heatmap\">\n<caption>"
       << htmlEscape(hm.title) << " <small>(" << htmlEscape(hm.source)
       << ")</small></caption>\n<tr><th></th>";
    for (const std::string &c : hm.colLabels)
        os << "<th>" << htmlEscape(c) << "</th>";
    os << "</tr>\n";
    for (std::size_t r = 0; r < hm.values.size(); ++r) {
        os << "<tr><th>" << htmlEscape(hm.rowLabels[r]) << "</th>";
        for (double v : hm.values[r])
            os << "<td style=\"background:"
               << rampColor((v - lo) / span) << "\">" << fmt(v, 3)
               << "</td>";
        os << "</tr>\n";
    }
    os << "</table>\n";
    return os.str();
}

std::string
svgClusterScatter(const std::vector<ClusterQualityRow> &rows)
{
    std::vector<const ClusterQualityRow *> pts;
    for (const ClusterQualityRow &row : rows)
        if (!std::isnan(row.meanErrorPct) &&
            !std::isnan(row.meanEfficiencyPct))
            pts.push_back(&row);
    if (pts.empty())
        return "<p class=\"empty\">no cluster-quality data</p>\n";

    double maxErr = 0.0;
    for (const ClusterQualityRow *p : pts)
        maxErr = std::max(maxErr, p->meanErrorPct);
    maxErr = std::max(maxErr * 1.2, 1.0);

    const double width = 420.0, height = 260.0;
    const double left = 46.0, bottom = height - 30.0;
    std::ostringstream os;
    os << "<svg viewBox=\"0 0 " << width << " " << height
       << "\" role=\"img\" class=\"chart\">\n"
       << "<line x1=\"" << left << "\" y1=\"8\" x2=\"" << left
       << "\" y2=\"" << bottom << "\" class=\"axis\"/>\n"
       << "<line x1=\"" << left << "\" y1=\"" << bottom
       << "\" x2=\"" << fmt(width - 8.0) << "\" y2=\"" << bottom
       << "\" class=\"axis\"/>\n"
       << "<text x=\"" << fmt(width / 2.0) << "\" y=\""
       << fmt(height - 4.0)
       << "\" text-anchor=\"middle\" class=\"lbl\">mean error %"
       << "</text>\n"
       << "<text x=\"12\" y=\"" << fmt(bottom / 2.0)
       << "\" class=\"lbl\" transform=\"rotate(-90 12 "
       << fmt(bottom / 2.0) << ")\" text-anchor=\"middle\">"
       << "efficiency %</text>\n";
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const ClusterQualityRow *p = pts[i];
        const double x =
            left + (width - 8.0 - left) * p->meanErrorPct / maxErr;
        const double y =
            bottom - (bottom - 8.0) *
                         std::min(100.0, p->meanEfficiencyPct) /
                         100.0;
        os << "<circle cx=\"" << fmt(x) << "\" cy=\"" << fmt(y)
           << "\" r=\"5\" fill=\"" << palette[i % paletteSize]
           << "\"/>\n<text x=\"" << fmt(x + 8.0) << "\" y=\""
           << fmt(y + 4.0) << "\" class=\"lbl\">"
           << htmlEscape(p->family) << "</text>\n";
    }
    os << "</svg>\n";
    return os.str();
}

std::string
htmlHeader(const std::string &title, int refreshSeconds)
{
    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
       << "<meta charset=\"utf-8\">\n";
    if (refreshSeconds > 0)
        os << "<meta http-equiv=\"refresh\" content=\""
           << refreshSeconds << "\">\n";
    os << "<title>" << htmlEscape(title) << "</title>\n"
       << "<style>\n"
          "body{font:14px/1.45 system-ui,sans-serif;margin:0;"
          "background:#f6f7f9;color:#1b1f24}\n"
          "header{background:#1b2a41;color:#fff;padding:14px 24px}\n"
          "header h1{margin:0;font-size:20px}\n"
          "header .sub{color:#9fb3c8;font-size:12px}\n"
          "main{max-width:980px;margin:0 auto;padding:16px}\n"
          "section{background:#fff;border:1px solid #dde3ea;"
          "border-radius:8px;margin:14px 0;padding:14px 18px}\n"
          "section h2{margin:0 0 8px;font-size:16px}\n"
          "table{border-collapse:collapse;font-size:13px}\n"
          "th,td{border:1px solid #dde3ea;padding:3px 9px;"
          "text-align:right}\n"
          "th{background:#eef2f6;text-align:left}\n"
          "td.name{text-align:left;font-family:monospace}\n"
          "caption{font-weight:600;padding:4px;caption-side:top}\n"
          ".chart{width:100%;height:auto;display:block}\n"
          ".lbl{font-size:10px;fill:#57606a}\n"
          ".axis{stroke:#9aa4b2;stroke-width:1}\n"
          ".legend span{margin-right:14px;font-size:12px}\n"
          ".legend i{display:inline-block;width:10px;height:10px;"
          "margin-right:4px;border-radius:2px}\n"
          ".empty{color:#8a939e;font-style:italic}\n"
          ".kpi{display:inline-block;margin-right:28px}\n"
          ".kpi b{display:block;font-size:18px}\n"
          ".kpi small{color:#57606a}\n"
          "</style>\n</head>\n<body>\n";
    return os.str();
}

std::string
htmlFooter()
{
    return "</main>\n</body>\n</html>\n";
}

} // namespace report
} // namespace gws
