/**
 * @file
 * Strict JSON reader for the report pipeline.
 *
 * The obs layer emits hand-rolled JSON (Perfetto traces,
 * gws.metrics.v1, gws.bench.v1); the report tool reads those files
 * back — possibly truncated, possibly from another machine, possibly
 * corrupted — so the parser applies the same input-boundary
 * discipline as the binary codecs (util/codec.hh): every failure is a
 * typed ReportError with the byte offset of the offending character,
 * never UB, an unbounded allocation, or a silently-wrong value.
 * Strictness knobs: RFC 8259 grammar, a nesting-depth cap (a
 * "[[[[..." bomb fails fast instead of overflowing the stack), a
 * total-input cap shared with the framed codecs' spirit (1 GiB), and
 * whole-input consumption (trailing bytes after the root value are an
 * error).
 *
 * The DOM is a plain tagged struct, not std::variant, so accessors
 * can carry path context in their error messages.
 */

#ifndef GWS_REPORT_JSON_HH
#define GWS_REPORT_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace gws {
namespace report {

/** Typed failure of the report input boundary (files, JSON, schema). */
class ReportError : public IoError
{
  public:
    using IoError::IoError;
};

/** A parsed JSON value (object members keep document order). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** The value's kind tag. */
    Kind kind() const { return tag; }

    bool isNull() const { return tag == Kind::Null; }
    bool isObject() const { return tag == Kind::Object; }
    bool isArray() const { return tag == Kind::Array; }
    bool isString() const { return tag == Kind::String; }
    bool isNumber() const { return tag == Kind::Number; }
    bool isBool() const { return tag == Kind::Bool; }

    /** The boolean payload; throws ReportError on a kind mismatch. */
    bool boolean() const;

    /** The numeric payload; throws ReportError on a kind mismatch. */
    double number() const;

    /** The string payload; throws ReportError on a kind mismatch. */
    const std::string &string() const;

    /** Array elements; throws ReportError on a kind mismatch. */
    const std::vector<JsonValue> &array() const;

    /** Object members in document order; throws on a kind mismatch. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** First member named `key`, or nullptr (objects only; throws on
     *  a kind mismatch). */
    const JsonValue *find(const std::string &key) const;

    /** Member `key`; throws ReportError when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Printable kind name ("object", "number", ...). */
    static const char *kindName(Kind kind);

  private:
    friend class JsonParser;

    Kind tag = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> arrayValues;
    std::vector<std::pair<std::string, JsonValue>> objectMembers;
};

/**
 * Parse one JSON document. Throws ReportError (with a byte offset)
 * on grammar violations, inputs past the 1 GiB cap, nesting beyond
 * 96 levels, or trailing non-whitespace after the root value.
 */
JsonValue parseJson(const std::string &text);

/**
 * Slurp a file, bounded by the parser's 1 GiB input cap. Throws
 * ReportError when the file cannot be opened or read.
 */
std::string readFileBounded(const std::string &path);

} // namespace report
} // namespace gws

#endif // GWS_REPORT_JSON_HH
