/**
 * @file
 * gws_report: turn observability artifacts into one self-contained
 * HTML execution dashboard.
 *
 * Offline mode reads any mix of a Perfetto trace (--trace), a
 * metrics snapshot in gws.metrics.v1 JSON or Prometheus text
 * (--metrics), and a directory of gws.bench.v1 envelopes
 * (--bench-dir), and writes the dashboard once:
 *
 *   gws_report --trace=fig7.trace.json --metrics=fig7.metrics.json \
 *              --bench-dir=results -o report.html
 *
 * Live mode polls a running gws_served daemon's MetricsScrape
 * endpoint and rewrites the dashboard on every poll (atomic rename,
 * so a browser auto-refreshing the file never sees a torn page):
 *
 *   gws_report --connect=unix:/tmp/gws.sock -o live.html
 *   gws_report --connect=tcp:7421 --interval=1 --polls=30
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>

#include "report/report.hh"
#include "serve/client.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace {

using namespace gws;
using namespace gws::report;

serve::ServeClient
connectDaemon(const std::string &endpoint)
{
    if (startsWith(endpoint, "unix:"))
        return serve::ServeClient::connectUnix(endpoint.substr(5));
    if (startsWith(endpoint, "tcp:")) {
        const long port = std::strtol(endpoint.c_str() + 4, nullptr,
                                      10);
        if (port <= 0 || port > 65535)
            GWS_FATAL("gws_report: bad port in --connect=",
                      endpoint);
        return serve::ServeClient::connectTcp(
            static_cast<std::uint16_t>(port));
    }
    GWS_FATAL("gws_report: --connect needs unix:<path> or "
              "tcp:<port>, got ", endpoint);
}

int
runLive(const ArgParser &args)
{
    const std::string endpoint = args.getString("connect");
    const std::string out = args.getString("out");
    const double interval =
        std::max(0.1, args.getDouble("interval"));
    const std::int64_t polls = args.getInt("polls");

    for (std::int64_t poll = 0; polls <= 0 || poll < polls; ++poll) {
        if (poll > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(
                    static_cast<long>(interval * 1000.0)));
        // One connection per poll: the daemon serves one request per
        // connection cheaply, and reconnecting rides out restarts.
        serve::ServeClient client = connectDaemon(endpoint);
        const MetricsData metrics = readMetricsText(
            client.scrapeMetrics(serve::MetricsFormat::Json));
        writeReportHtml(buildLiveReportModel(metrics, endpoint),
                        out);
        std::printf("poll %lld: wrote %s\n",
                    static_cast<long long>(poll + 1), out.c_str());
    }
    return 0;
}

int
run(const ArgParser &args)
{
    if (!args.getString("connect").empty())
        return runLive(args);

    ReportInputs inputs;
    inputs.tracePath = args.getString("trace");
    inputs.metricsPath = args.getString("metrics");
    inputs.benchDir = args.getString("bench-dir");
    const std::string out = args.getString("out");

    writeReportHtml(buildReportModel(inputs), out);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("gws_report",
                   "self-contained HTML execution dashboard from "
                   "gws observability artifacts");
    args.addString("trace", "",
                   "Perfetto trace JSON (--trace-out of any bench)");
    args.addString("metrics", "",
                   "metrics snapshot, gws.metrics.v1 JSON or "
                   "Prometheus text");
    args.addString("bench-dir", "",
                   "directory of BENCH_*.json envelopes");
    args.addString("out", "report.html", "output HTML path");
    args.addString("connect", "",
                   "live mode: gws_served endpoint "
                   "(unix:<path> | tcp:<port>)");
    args.addDouble("interval", 2.0,
                   "live mode: seconds between scrapes");
    args.addInt("polls", 0,
                "live mode: stop after N polls (0 = run forever)");
    if (!args.parse(argc, argv))
        return 0;

    try {
        return run(args);
    } catch (const gws::IoError &e) {
        GWS_FATAL("gws_report: ", e.what());
    } catch (const std::exception &e) {
        GWS_FATAL("gws_report: unexpected: ", e.what());
    }
}
