#include "report/report.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "report/html.hh"
#include "util/strings.hh"

namespace gws {
namespace report {

ReportModel
buildReportModel(const ReportInputs &inputs)
{
    if (inputs.tracePath.empty() && inputs.metricsPath.empty() &&
        inputs.benchDir.empty())
        throw ReportError(
            "report: no inputs (need --trace, --metrics, or "
            "--bench-dir)");

    ReportModel model;
    if (!inputs.tracePath.empty()) {
        const TraceData trace =
            readPerfettoTraceFile(inputs.tracePath);
        model.forest = buildSpanForest(trace);
        model.utilization = computeUtilization(
            model.forest, reportTimelineBins, reportMaxStages);
        model.attribution = computeAttribution(model.forest);
        model.hasTrace = true;
        model.sources.push_back("trace: " + inputs.tracePath);
    }
    if (!inputs.metricsPath.empty()) {
        model.metrics = readMetricsFile(inputs.metricsPath);
        model.hasMetrics = true;
        model.sources.push_back("metrics: " + inputs.metricsPath);
    }
    if (!inputs.benchDir.empty()) {
        model.benches = loadBenchDir(inputs.benchDir);
        model.heatmaps = extractHeatmaps(model.benches);
        model.clusterQuality = extractClusterQuality(model.benches);
        model.sources.push_back(
            "benches: " + inputs.benchDir + " (" +
            std::to_string(model.benches.size()) + " envelopes)");
    }
    return model;
}

ReportModel
buildLiveReportModel(const MetricsData &metrics,
                     const std::string &endpoint)
{
    ReportModel model;
    model.live = true;
    model.metrics = metrics;
    model.hasMetrics = true;
    model.sources.push_back("live scrape: " + endpoint);
    return model;
}

namespace {

/** One KPI chip. */
void
kpi(std::ostringstream &os, const std::string &value,
    const std::string &label)
{
    os << "<div class=\"kpi\"><b>" << htmlEscape(value)
       << "</b><small>" << htmlEscape(label) << "</small></div>\n";
}

/** A metrics table over rows with the given dotted-name prefix.
 *  Returns false when nothing matched (caller prints a stub). */
bool
metricsTable(std::ostringstream &os, const MetricsData &metrics,
             const std::string &prefix)
{
    const std::vector<const MetricRow *> rows =
        metrics.withPrefix(prefix);
    if (rows.empty())
        return false;
    os << "<table>\n<tr><th>metric</th><th>type</th>"
          "<th>value</th><th>p50</th><th>p95</th><th>p99</th>"
          "</tr>\n";
    for (const MetricRow *row : rows) {
        os << "<tr><td class=\"name\">" << htmlEscape(row->name)
           << "</td><td>" << htmlEscape(row->type) << "</td>";
        if (row->type == "histogram") {
            os << "<td>" << humanCount(
                      static_cast<double>(row->count))
               << " obs</td><td>" << formatDouble(row->p50, 1)
               << "</td><td>" << formatDouble(row->p95, 1)
               << "</td><td>" << formatDouble(row->p99, 1)
               << "</td>";
        } else if (row->type == "info") {
            os << "<td colspan=\"4\" class=\"name\">"
               << htmlEscape(row->info) << "</td>";
        } else {
            os << "<td>" << formatDouble(row->value, 3)
               << "</td><td></td><td></td><td></td>";
        }
        os << "</tr>\n";
    }
    os << "</table>\n";
    return true;
}

void
openPanel(std::ostringstream &os, const char *id, const char *title)
{
    os << "<section id=\"" << id << "\">\n<h2>" << title
       << "</h2>\n";
}

} // namespace

std::string
renderReportHtml(const ReportModel &model)
{
    std::ostringstream os;
    os << htmlHeader("gws execution dashboard",
                     model.live ? 2 : 0);
    os << "<header><h1>gws execution dashboard"
       << (model.live ? " <small>(live)</small>" : "")
       << "</h1><div class=\"sub\">3D workload subsetting — span "
          "analytics, sweeps, and serving health</div></header>\n"
       << "<main>\n";

    openPanel(os, "panel-meta", "Provenance");
    os << "<ul>\n";
    for (const std::string &src : model.sources)
        os << "<li>" << htmlEscape(src) << "</li>\n";
    if (model.hasMetrics)
        if (const MetricRow *build =
                model.metrics.find("gws.serve.build_info"))
            os << "<li>serving build: " << htmlEscape(build->info)
               << "</li>\n";
    os << "</ul>\n</section>\n";

    openPanel(os, "panel-utilization", "Per-stage utilization");
    if (model.hasTrace) {
        os << "<h3>thread occupancy</h3>\n"
           << svgOccupancyTracks(model.utilization)
           << "<h3>self time by stage</h3>\n"
           << svgStageArea(model.utilization);
    } else {
        os << "<p class=\"empty\">no trace supplied</p>\n";
    }
    os << "</section>\n";

    openPanel(os, "panel-bottlenecks", "Bottleneck attribution");
    if (model.hasTrace && !model.attribution.rows.empty()) {
        const Attribution &attr = model.attribution;
        kpi(os, humanNs(attr.wallNs), "trace wall time");
        kpi(os, humanNs(attr.criticalPathNs), "critical path");
        kpi(os, humanNs(attr.parallelSavedNs),
            "saved by parallelism");
        kpi(os, std::to_string(attr.fanOuts), "fan-outs stitched");
        os << "<table>\n<tr><th>span</th><th>count</th>"
              "<th>total</th><th>self</th><th>on critical path</th>"
              "<th>critical %</th></tr>\n";
        const double cpNs = attr.criticalPathNs
                                ? static_cast<double>(
                                      attr.criticalPathNs)
                                : 1.0;
        std::size_t shown = 0;
        for (const AttributionRow &row : attr.rows) {
            if (++shown > 20)
                break;
            os << "<tr><td class=\"name\">" << htmlEscape(row.name)
               << "</td><td>" << row.count << "</td><td>"
               << humanNs(row.totalNs) << "</td><td>"
               << humanNs(row.selfNs) << "</td><td>"
               << humanNs(row.criticalNs) << "</td><td>"
               << formatPercent(
                      static_cast<double>(row.criticalNs) / cpNs, 1)
               << "</td></tr>\n";
        }
        os << "</table>\n";
        if (attr.orphanChunks > 0)
            os << "<p class=\"empty\">" << attr.orphanChunks
               << " chunk spans had no matching flow start</p>\n";
    } else {
        os << "<p class=\"empty\">no trace supplied</p>\n";
    }
    os << "</section>\n";

    openPanel(os, "panel-heatmap", "Sweep heatmaps");
    if (model.heatmaps.empty())
        os << "<p class=\"empty\">no heatmaps in bench "
              "envelopes</p>\n";
    for (const Heatmap &hm : model.heatmaps)
        os << heatmapTable(hm);
    os << "</section>\n";

    openPanel(os, "panel-cluster-quality", "Cluster quality");
    if (model.clusterQuality.empty()) {
        os << "<p class=\"empty\">no cluster-family results</p>\n";
    } else {
        os << svgClusterScatter(model.clusterQuality)
           << "<table>\n<tr><th>family</th><th>mean error %</th>"
              "<th>efficiency %</th><th>outlier %</th>"
              "<th>clusters</th></tr>\n";
        auto cell = [&os](double v, int precision) {
            os << "<td>"
               << (std::isnan(v) ? std::string("—")
                                 : formatDouble(v, precision))
               << "</td>";
        };
        for (const ClusterQualityRow &row : model.clusterQuality) {
            os << "<tr><td class=\"name\">" << htmlEscape(row.family)
               << "</td>";
            cell(row.meanErrorPct, 2);
            cell(row.meanEfficiencyPct, 1);
            cell(row.outlierPct, 2);
            cell(row.clusters, 0);
            os << "</tr>\n";
        }
        os << "</table>\n";
    }
    os << "</section>\n";

    openPanel(os, "panel-shards", "Shard balance (gws.part.*)");
    if (!model.hasMetrics ||
        !metricsTable(os, model.metrics, "gws.part."))
        os << "<p class=\"empty\">no partitioner metrics</p>\n";
    os << "</section>\n";

    openPanel(os, "panel-streams", "Streaming (gws.stream.*)");
    if (!model.hasMetrics ||
        !metricsTable(os, model.metrics, "gws.stream."))
        os << "<p class=\"empty\">no streaming metrics</p>\n";
    os << "</section>\n";

    openPanel(os, "panel-serve", "Serving (gws.serve.*)");
    if (model.hasMetrics) {
        if (const MetricRow *up =
                model.metrics.find("gws.serve.uptime_seconds"))
            kpi(os, formatDouble(up->value, 1) + " s",
                "daemon uptime");
        if (const MetricRow *dropped =
                model.metrics.find("gws.trace.dropped_spans"))
            kpi(os, humanCount(dropped->value),
                "trace spans dropped");
    }
    if (!model.hasMetrics ||
        !metricsTable(os, model.metrics, "gws.serve."))
        os << "<p class=\"empty\">no serving metrics</p>\n";
    os << "</section>\n";

    openPanel(os, "panel-benches", "Bench envelopes");
    if (model.benches.empty()) {
        os << "<p class=\"empty\">no bench envelopes</p>\n";
    } else {
        os << "<table>\n<tr><th>bench</th><th>git</th>"
              "<th>threads</th><th>wall</th><th>peak rss</th>"
              "</tr>\n";
        for (const BenchEnvelope &env : model.benches)
            os << "<tr><td class=\"name\">" << htmlEscape(env.bench)
               << "</td><td class=\"name\">" << htmlEscape(env.git)
               << "</td><td>" << env.threads << "</td><td>"
               << formatDouble(env.wallMs, 1) << " ms</td><td>"
               << humanBytes(
                      static_cast<double>(env.peakRssBytes))
               << "</td></tr>\n";
        os << "</table>\n";
    }
    os << "</section>\n";

    os << htmlFooter();
    return os.str();
}

void
writeReportHtml(const ReportModel &model, const std::string &path)
{
    const std::string html = renderReportHtml(model);
    const std::string tmp = path + ".tmp";
    FILE *fp = std::fopen(tmp.c_str(), "w");
    if (fp == nullptr)
        throw ReportError("report: cannot write " + tmp);
    const std::size_t n =
        std::fwrite(html.data(), 1, html.size(), fp);
    const bool ok = n == html.size() && std::fclose(fp) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        throw ReportError("report: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw ReportError("report: cannot rename " + tmp + " to " +
                          path);
    }
}

} // namespace report
} // namespace gws
