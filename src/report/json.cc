#include "report/json.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gws {
namespace report {

namespace {

/** Whole-input bound, matching the framed codecs' payload cap. */
constexpr std::size_t jsonInputCap = std::size_t{1} << 30;

/** Nesting bound: deeper documents are bombs, not data. */
constexpr std::size_t jsonDepthCap = 96;

} // namespace

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "bool";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    return "?";
}

namespace {

[[noreturn]] void
kindMismatch(JsonValue::Kind want, JsonValue::Kind got)
{
    throw ReportError(std::string("json: expected a ") +
                      JsonValue::kindName(want) + ", found a " +
                      JsonValue::kindName(got));
}

} // namespace

bool
JsonValue::boolean() const
{
    if (tag != Kind::Bool)
        kindMismatch(Kind::Bool, tag);
    return boolValue;
}

double
JsonValue::number() const
{
    if (tag != Kind::Number)
        kindMismatch(Kind::Number, tag);
    return numberValue;
}

const std::string &
JsonValue::string() const
{
    if (tag != Kind::String)
        kindMismatch(Kind::String, tag);
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (tag != Kind::Array)
        kindMismatch(Kind::Array, tag);
    return arrayValues;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (tag != Kind::Object)
        kindMismatch(Kind::Object, tag);
    return objectMembers;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members())
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        throw ReportError("json: missing member \"" + key + "\"");
    return *v;
}

/** Recursive-descent parser over the whole input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    JsonValue
    parse()
    {
        if (s.size() > jsonInputCap)
            throw ReportError("json: input exceeds the 1 GiB cap (" +
                              std::to_string(s.size()) + " bytes)");
        JsonValue root = value(0);
        skipWs();
        if (i != s.size())
            fail("trailing bytes after the root value");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw ReportError("json: " + what,
                          static_cast<std::int64_t>(i));
    }

    void
    skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r'))
            ++i;
    }

    char
    peek() const
    {
        return i < s.size() ? s[i] : '\0';
    }

    void
    expect(char c)
    {
        if (i >= s.size() || s[i] != c)
            fail(std::string("expected '") + c + "'");
        ++i;
    }

    void
    literal(const char *word, std::size_t n)
    {
        if (s.compare(i, n, word) != 0)
            fail(std::string("bad literal (wanted \"") + word +
                 "\")");
        i += n;
    }

    JsonValue
    value(std::size_t depth)
    {
        if (depth > jsonDepthCap)
            fail("nesting exceeds " + std::to_string(jsonDepthCap) +
                 " levels");
        skipWs();
        if (i >= s.size())
            fail("unexpected end of input");
        JsonValue v;
        switch (s[i]) {
          case '{':
            return object(depth);
          case '[':
            return array(depth);
          case '"':
            v.tag = JsonValue::Kind::String;
            v.stringValue = string();
            return v;
          case 't':
            literal("true", 4);
            v.tag = JsonValue::Kind::Bool;
            v.boolValue = true;
            return v;
          case 'f':
            literal("false", 5);
            v.tag = JsonValue::Kind::Bool;
            v.boolValue = false;
            return v;
          case 'n':
            literal("null", 4);
            return v;
          default:
            v.tag = JsonValue::Kind::Number;
            v.numberValue = number();
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (i >= s.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(s[i]);
            if (c == '"') {
                ++i;
                return out;
            }
            if (c < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(s[i]);
                ++i;
                continue;
            }
            ++i; // backslash
            if (i >= s.size())
                fail("truncated escape");
            const char esc = s[i];
            ++i;
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (i + 4 > s.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int h = 0; h < 4; ++h) {
                    const char d = s[i + static_cast<std::size_t>(h)];
                    code <<= 4;
                    if (d >= '0' && d <= '9')
                        code |= static_cast<unsigned>(d - '0');
                    else if (d >= 'a' && d <= 'f')
                        code |= static_cast<unsigned>(d - 'a' + 10);
                    else if (d >= 'A' && d <= 'F')
                        code |= static_cast<unsigned>(d - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                i += 4;
                // UTF-8-encode the code point; surrogate pairs are
                // passed through as two 3-byte sequences (the report
                // only ever round-trips ASCII-escaped exporter
                // output, so fidelity beyond that is not required).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    double
    number()
    {
        const std::size_t start = i;
        if (peek() == '-')
            ++i;
        if (i >= s.size() ||
            !(s[i] >= '0' && s[i] <= '9'))
            fail("malformed number");
        if (s[i] == '0')
            ++i; // no leading zeros
        else
            while (i < s.size() && s[i] >= '0' && s[i] <= '9')
                ++i;
        if (i < s.size() && s[i] == '.') {
            ++i;
            if (i >= s.size() || !(s[i] >= '0' && s[i] <= '9'))
                fail("malformed fraction");
            while (i < s.size() && s[i] >= '0' && s[i] <= '9')
                ++i;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-'))
                ++i;
            if (i >= s.size() || !(s[i] >= '0' && s[i] <= '9'))
                fail("malformed exponent");
            while (i < s.size() && s[i] >= '0' && s[i] <= '9')
                ++i;
        }
        const std::string token = s.substr(start, i - start);
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("unparseable number");
        return v;
    }

    JsonValue
    object(std::size_t depth)
    {
        expect('{');
        JsonValue v;
        v.tag = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++i;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            v.objectMembers.emplace_back(std::move(key),
                                         value(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++i;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array(std::size_t depth)
    {
        expect('[');
        JsonValue v;
        v.tag = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++i;
            return v;
        }
        while (true) {
            v.arrayValues.push_back(value(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++i;
                continue;
            }
            expect(']');
            return v;
        }
    }

    const std::string &s;
    std::size_t i = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

std::string
readFileBounded(const std::string &path)
{
    FILE *fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr)
        throw ReportError("report: cannot open " + path + ": " +
                          std::strerror(errno));
    std::string out;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
        if (out.size() + n > jsonInputCap) {
            std::fclose(fp);
            throw ReportError("report: " + path +
                              " exceeds the 1 GiB input cap");
        }
        out.append(buf, n);
    }
    const bool failed = std::ferror(fp) != 0;
    std::fclose(fp);
    if (failed)
        throw ReportError("report: read error on " + path);
    return out;
}

} // namespace report
} // namespace gws
