#include "report/analysis.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

namespace gws {
namespace report {

SpanForest
buildSpanForest(const TraceData &trace)
{
    SpanForest forest;

    // Split complete spans by thread; record flow starts as-is.
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> byTid;
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        const TraceSpan &ev = trace.events[i];
        if (ev.phase == 'X') {
            byTid[ev.tid].push_back(i);
            forest.threads =
                std::max(forest.threads, ev.tid + 1);
        } else if (ev.phase == 's') {
            forest.flowStarts.push_back(
                FlowStartEvent{ev.flowId, ev.startNs, ev.tid});
            forest.threads =
                std::max(forest.threads, ev.tid + 1);
        }
    }

    bool any = false;
    for (auto &[tid, indices] : byTid) {
        // Interval nesting: earliest start first, and at equal starts
        // the longest span first so a parent precedes the children it
        // contains.
        std::sort(indices.begin(), indices.end(),
                  [&trace](std::size_t a, std::size_t b) {
                      const TraceSpan &ea = trace.events[a];
                      const TraceSpan &eb = trace.events[b];
                      if (ea.startNs != eb.startNs)
                          return ea.startNs < eb.startNs;
                      return ea.durationNs > eb.durationNs;
                  });

        std::vector<std::size_t> stack; // node indices, open spans
        for (std::size_t idx : indices) {
            const TraceSpan &ev = trace.events[idx];
            const std::uint64_t end = ev.startNs + ev.durationNs;
            while (!stack.empty()) {
                const SpanNode &top = forest.nodes[stack.back()];
                const std::uint64_t topEnd =
                    top.startNs + top.durationNs;
                if (ev.startNs >= top.startNs && end <= topEnd)
                    break; // contained: top is the parent
                stack.pop_back();
            }

            SpanNode node;
            node.name = ev.name;
            node.startNs = ev.startNs;
            node.durationNs = ev.durationNs;
            node.selfNs = ev.durationNs;
            node.tid = tid;
            node.flowId = ev.flowId;
            node.depth = static_cast<std::uint32_t>(stack.size());
            const std::size_t nodeIndex = forest.nodes.size();
            if (!stack.empty()) {
                node.parent = stack.back();
                forest.nodes[stack.back()].children.push_back(
                    nodeIndex);
            } else {
                forest.roots.push_back(nodeIndex);
            }
            forest.nodes.push_back(std::move(node));
            stack.push_back(nodeIndex);

            if (!any || ev.startNs < forest.minStartNs)
                forest.minStartNs = ev.startNs;
            if (!any || end > forest.maxEndNs)
                forest.maxEndNs = end;
            any = true;
        }
    }

    // Self time: duration minus direct children.
    for (SpanNode &node : forest.nodes) {
        std::uint64_t childNs = 0;
        for (std::size_t c : node.children)
            childNs += forest.nodes[c].durationNs;
        node.selfNs =
            node.durationNs >= childNs ? node.durationNs - childNs : 0;
    }

    // Cross-thread determinism: roots in start order.
    std::sort(forest.roots.begin(), forest.roots.end(),
              [&forest](std::size_t a, std::size_t b) {
                  const SpanNode &na = forest.nodes[a];
                  const SpanNode &nb = forest.nodes[b];
                  if (na.startNs != nb.startNs)
                      return na.startNs < nb.startNs;
                  return na.tid < nb.tid;
              });
    return forest;
}

UtilizationTimeline
computeUtilization(const SpanForest &forest, std::size_t bins,
                   std::size_t maxStages)
{
    UtilizationTimeline tl;
    if (bins == 0 || forest.nodes.empty())
        return tl;

    tl.t0Ns = forest.minStartNs;
    tl.t1Ns = std::max(forest.maxEndNs, forest.minStartNs + 1);
    tl.binNs = (tl.t1Ns - tl.t0Ns + bins - 1) / bins;

    const std::uint32_t threads = std::max(forest.threads, 1u);
    tl.perThread.assign(threads, std::vector<double>(bins, 0.0));
    tl.meanOccupancy.assign(bins, 0.0);

    // Overlap of [s, e) with each bin, as ns handed to `add`.
    auto spread = [&tl, bins](std::uint64_t s, std::uint64_t e,
                              auto &&add) {
        if (e <= s)
            return;
        const std::uint64_t rel0 = s - std::min(s, tl.t0Ns);
        std::size_t b = static_cast<std::size_t>(rel0 / tl.binNs);
        if (b >= bins)
            return;
        std::uint64_t cursor = s;
        while (cursor < e && b < bins) {
            const std::uint64_t binEnd =
                tl.t0Ns + (static_cast<std::uint64_t>(b) + 1) *
                              tl.binNs;
            const std::uint64_t stop = std::min(e, binEnd);
            add(b, static_cast<double>(stop - cursor));
            cursor = stop;
            ++b;
        }
    };

    // Occupancy: root spans only (they cover all nested work).
    for (std::size_t r : forest.roots) {
        const SpanNode &node = forest.nodes[r];
        spread(node.startNs, node.startNs + node.durationNs,
               [&tl, &node](std::size_t b, double ns) {
                   tl.perThread[node.tid][b] += ns;
               });
    }
    const double binNs = static_cast<double>(tl.binNs);
    for (std::vector<double> &track : tl.perThread)
        for (double &v : track)
            v = std::min(1.0, v / binNs);
    for (std::size_t b = 0; b < bins; ++b) {
        double sum = 0.0;
        for (const std::vector<double> &track : tl.perThread)
            sum += track[b];
        tl.meanOccupancy[b] = sum / static_cast<double>(threads);
    }

    // Stage tracks: top names by total self time, tail -> "(other)".
    std::unordered_map<std::string, std::uint64_t> selfByName;
    for (const SpanNode &node : forest.nodes)
        selfByName[node.name] += node.selfNs;
    std::vector<std::pair<std::string, std::uint64_t>> ranked(
        selfByName.begin(), selfByName.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });

    std::unordered_map<std::string, std::size_t> stageIndex;
    for (const auto &[name, selfNs] : ranked) {
        if (tl.stageNames.size() < maxStages) {
            stageIndex[name] = tl.stageNames.size();
            tl.stageNames.push_back(name);
        }
    }
    const bool hasOther = ranked.size() > tl.stageNames.size();
    if (hasOther)
        tl.stageNames.push_back("(other)");
    tl.perStage.assign(tl.stageNames.size(),
                       std::vector<double>(bins, 0.0));

    for (const SpanNode &node : forest.nodes) {
        if (node.selfNs == 0)
            continue;
        auto it = stageIndex.find(node.name);
        const std::size_t stage = it != stageIndex.end()
                                      ? it->second
                                      : tl.stageNames.size() - 1;
        // Self time is spread uniformly over the span's extent: the
        // trace records where children sat, not which gaps were
        // self work, and the uniform density is exact in aggregate.
        const double density =
            node.durationNs
                ? static_cast<double>(node.selfNs) /
                      static_cast<double>(node.durationNs)
                : 0.0;
        spread(node.startNs, node.startNs + node.durationNs,
               [&tl, stage, density](std::size_t b, double ns) {
                   tl.perStage[stage][b] += ns * density;
               });
    }
    return tl;
}

namespace {

/** Critical-path state shared by the cp / mark recursions. */
struct CpContext
{
    const SpanForest &forest;

    /** flowId -> owner node (npos = ownerless). */
    std::unordered_map<std::uint64_t, std::size_t> owners;

    /** flowId -> member chunk node indices. */
    std::unordered_map<std::uint64_t, std::vector<std::size_t>>
        groups;

    /** Memoised cp() per node. */
    std::vector<std::uint64_t> cp;

    /** criticalNs accumulator per node index (marked pass). */
    std::vector<bool> critical;
};

/** cp(node): self + sequential children + max over owned fan-outs. */
std::uint64_t
computeCp(CpContext &ctx, std::size_t n)
{
    if (ctx.cp[n] != static_cast<std::uint64_t>(-1))
        return ctx.cp[n];
    const SpanNode &node = ctx.forest.nodes[n];
    std::uint64_t total = node.selfNs;
    for (std::size_t c : node.children) {
        const SpanNode &child = ctx.forest.nodes[c];
        const bool ownedHere =
            child.flowId != 0 &&
            ctx.owners.count(child.flowId) != 0 &&
            ctx.owners.at(child.flowId) == n;
        if (!ownedHere)
            total += computeCp(ctx, c);
        else
            computeCp(ctx, c); // memoise for the group max below
    }
    for (const auto &[flowId, owner] : ctx.owners) {
        if (owner != n)
            continue;
        std::uint64_t best = 0;
        for (std::size_t chunk : ctx.groups.at(flowId))
            best = std::max(best, computeCp(ctx, chunk));
        total += best;
    }
    ctx.cp[n] = total;
    return total;
}

/** Mark the nodes whose self time lies on the critical path. */
void
markCritical(CpContext &ctx, std::size_t n)
{
    ctx.critical[n] = true;
    const SpanNode &node = ctx.forest.nodes[n];
    for (std::size_t c : node.children) {
        const SpanNode &child = ctx.forest.nodes[c];
        const bool ownedHere =
            child.flowId != 0 &&
            ctx.owners.count(child.flowId) != 0 &&
            ctx.owners.at(child.flowId) == n;
        if (!ownedHere)
            markCritical(ctx, c);
    }
    for (const auto &[flowId, owner] : ctx.owners) {
        if (owner != n)
            continue;
        std::size_t best = SpanNode::npos;
        std::uint64_t bestCp = 0;
        for (std::size_t chunk : ctx.groups.at(flowId)) {
            if (best == SpanNode::npos || ctx.cp[chunk] > bestCp) {
                best = chunk;
                bestCp = ctx.cp[chunk];
            }
        }
        if (best != SpanNode::npos)
            markCritical(ctx, best);
    }
}

} // namespace

Attribution
computeAttribution(const SpanForest &forest)
{
    Attribution out;
    if (forest.nodes.empty())
        return out;
    out.wallNs = forest.maxEndNs - forest.minStartNs;

    CpContext ctx{forest, {}, {}, {}, {}};
    ctx.cp.assign(forest.nodes.size(),
                  static_cast<std::uint64_t>(-1));
    ctx.critical.assign(forest.nodes.size(), false);

    // Group chunks by flow id; only groups with a recorded flow
    // start get stitched (orphans fall back to plain tree nodes).
    std::unordered_map<std::uint64_t, FlowStartEvent> starts;
    for (const FlowStartEvent &fs : forest.flowStarts)
        starts[fs.flowId] = fs;
    for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
        const std::uint64_t flowId = forest.nodes[i].flowId;
        if (flowId == 0)
            continue;
        if (starts.count(flowId) == 0) {
            ++out.orphanChunks;
            continue;
        }
        ctx.groups[flowId].push_back(i);
    }

    // Owner = deepest span on the submitting thread whose interval
    // contains the flow-start timestamp.
    for (auto &[flowId, members] : ctx.groups) {
        const FlowStartEvent &fs = starts.at(flowId);
        std::size_t owner = SpanNode::npos;
        std::uint32_t ownerDepth = 0;
        for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
            const SpanNode &node = forest.nodes[i];
            if (node.tid != fs.tid || node.flowId == flowId)
                continue;
            if (fs.tsNs < node.startNs ||
                fs.tsNs >= node.startNs + node.durationNs)
                continue;
            if (owner == SpanNode::npos || node.depth >= ownerDepth) {
                owner = i;
                ownerDepth = node.depth;
            }
        }
        ctx.owners[flowId] = owner;
        (void)members;
    }
    out.fanOuts = ctx.groups.size();

    // Critical path = sequential composition of the non-chunk roots
    // plus, for fan-outs nobody owns, their longest chunk.
    std::vector<std::size_t> countedRoots;
    for (std::size_t r : forest.roots) {
        const SpanNode &node = forest.nodes[r];
        const bool groupedChunk =
            node.flowId != 0 && ctx.groups.count(node.flowId) != 0;
        if (!groupedChunk)
            countedRoots.push_back(r);
    }
    for (std::size_t r : countedRoots)
        out.criticalPathNs += computeCp(ctx, r);
    for (const auto &[flowId, members] : ctx.groups) {
        // Ensure every chunk is memoised before taking group maxima.
        for (std::size_t chunk : members)
            computeCp(ctx, chunk);
        if (ctx.owners.at(flowId) == SpanNode::npos) {
            std::uint64_t best = 0;
            for (std::size_t chunk : members)
                best = std::max(best, ctx.cp[chunk]);
            out.criticalPathNs += best;
        }
    }

    for (std::size_t r : countedRoots)
        markCritical(ctx, r);
    for (const auto &[flowId, members] : ctx.groups) {
        if (ctx.owners.at(flowId) != SpanNode::npos)
            continue;
        std::size_t best = SpanNode::npos;
        std::uint64_t bestCp = 0;
        for (std::size_t chunk : members)
            if (best == SpanNode::npos || ctx.cp[chunk] > bestCp) {
                best = chunk;
                bestCp = ctx.cp[chunk];
            }
        if (best != SpanNode::npos)
            markCritical(ctx, best);
    }

    // Parallel savings: what the fan-outs' non-critical chunks would
    // have cost if run sequentially.
    for (const auto &[flowId, members] : ctx.groups) {
        std::uint64_t sum = 0;
        std::uint64_t best = 0;
        for (std::size_t chunk : members) {
            sum += ctx.cp[chunk];
            best = std::max(best, ctx.cp[chunk]);
        }
        out.parallelSavedNs += sum - best;
    }

    // Roll up per name.
    std::unordered_map<std::string, std::size_t> rowIndex;
    for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
        const SpanNode &node = forest.nodes[i];
        auto [it, inserted] =
            rowIndex.try_emplace(node.name, out.rows.size());
        if (inserted)
            out.rows.push_back(AttributionRow{node.name, 0, 0, 0, 0});
        AttributionRow &row = out.rows[it->second];
        row.count += 1;
        row.totalNs += node.durationNs;
        row.selfNs += node.selfNs;
        if (ctx.critical[i])
            row.criticalNs += node.selfNs;
    }
    std::sort(out.rows.begin(), out.rows.end(),
              [](const AttributionRow &a, const AttributionRow &b) {
                  if (a.criticalNs != b.criticalNs)
                      return a.criticalNs > b.criticalNs;
                  if (a.selfNs != b.selfNs)
                      return a.selfNs > b.selfNs;
                  return a.name < b.name;
              });
    return out;
}

std::vector<Heatmap>
extractHeatmaps(const std::vector<BenchEnvelope> &benches)
{
    std::vector<Heatmap> out;
    for (const BenchEnvelope &env : benches) {
        const JsonValue *hm = env.results.find("heatmap");
        if (hm == nullptr)
            continue;
        Heatmap h;
        h.source = env.bench;
        h.title = hm->at("title").string();
        for (const JsonValue &r : hm->at("rows").array())
            h.rowLabels.push_back(r.string());
        for (const JsonValue &c : hm->at("cols").array())
            h.colLabels.push_back(c.string());
        const auto &rows = hm->at("values").array();
        if (rows.size() != h.rowLabels.size())
            throw ReportError("report: heatmap in " + env.bench +
                              " has " + std::to_string(rows.size()) +
                              " value rows for " +
                              std::to_string(h.rowLabels.size()) +
                              " labels");
        for (const JsonValue &row : rows) {
            std::vector<double> vals;
            for (const JsonValue &v : row.array())
                vals.push_back(v.number());
            if (vals.size() != h.colLabels.size())
                throw ReportError(
                    "report: heatmap in " + env.bench +
                    " has a ragged value row");
            h.values.push_back(std::move(vals));
        }
        out.push_back(std::move(h));
    }
    return out;
}

std::vector<ClusterQualityRow>
extractClusterQuality(const std::vector<BenchEnvelope> &benches)
{
    static const struct
    {
        const char *suffix;
        double ClusterQualityRow::*field;
    } facets[] = {
        {"_mean_error_pct", &ClusterQualityRow::meanErrorPct},
        {"_mean_efficiency_pct",
         &ClusterQualityRow::meanEfficiencyPct},
        {"_outlier_pct", &ClusterQualityRow::outlierPct},
        {"_clusters", &ClusterQualityRow::clusters},
    };

    std::vector<ClusterQualityRow> out;
    auto rowFor = [&out](const std::string &family)
        -> ClusterQualityRow & {
        for (ClusterQualityRow &row : out)
            if (row.family == family)
                return row;
        const double nan = std::nan("");
        out.push_back(ClusterQualityRow{family, nan, nan, nan, nan});
        return out.back();
    };

    for (const BenchEnvelope &env : benches) {
        for (const auto &[key, value] : env.results.members()) {
            if (key.compare(0, 7, "family_") != 0)
                continue;
            for (const auto &facet : facets) {
                const std::size_t n = std::strlen(facet.suffix);
                if (key.size() <= 7 + n ||
                    key.compare(key.size() - n, n, facet.suffix) != 0)
                    continue;
                const std::string family =
                    key.substr(7, key.size() - 7 - n);
                rowFor(family).*facet.field = value.number();
                break;
            }
        }
    }
    return out;
}

} // namespace report
} // namespace gws
