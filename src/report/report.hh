/**
 * @file
 * The report model and page composer.
 *
 * buildReportModel() ingests whichever artifacts the caller has —
 * trace, metrics snapshot, bench-envelope directory; all optional,
 * at least one required — and runs the analysis passes once.
 * renderReportHtml() lays the digested model out as the dashboard
 * panels, each wrapped in a <section id="panel-...">:
 *
 *   panel-meta             provenance (sources, git, mode)
 *   panel-utilization      per-thread occupancy + stage self-time
 *   panel-bottlenecks      attribution table + critical-path KPIs
 *   panel-heatmap          sweep heatmaps from bench envelopes
 *   panel-cluster-quality  error/efficiency/outliers per family
 *   panel-shards           gws.part.* metrics
 *   panel-streams          gws.stream.* metrics
 *   panel-serve            gws.serve.* (uptime, build, latencies)
 *   panel-benches          envelope summary table
 *
 * The ids are the contract the structural tests (and the CI smoke
 * job's validator) key on; renaming one is a breaking change.
 */

#ifndef GWS_REPORT_REPORT_HH
#define GWS_REPORT_REPORT_HH

#include <string>
#include <vector>

#include "report/analysis.hh"

namespace gws {
namespace report {

/** Artifact paths feeding one offline report (empty = absent). */
struct ReportInputs
{
    std::string tracePath;
    std::string metricsPath;
    std::string benchDir;
};

/** Everything renderReportHtml() needs, analysis already run. */
struct ReportModel
{
    /** True when built from a live scrape (adds auto-refresh and a
     *  "live" badge). */
    bool live = false;

    /** Where the data came from, for the provenance panel. */
    std::vector<std::string> sources;

    bool hasTrace = false;
    SpanForest forest;
    UtilizationTimeline utilization;
    Attribution attribution;

    bool hasMetrics = false;
    MetricsData metrics;

    std::vector<BenchEnvelope> benches;
    std::vector<Heatmap> heatmaps;
    std::vector<ClusterQualityRow> clusterQuality;
};

/** Timeline resolution used by buildReportModel(). */
constexpr std::size_t reportTimelineBins = 160;

/** Stage tracks kept before folding into "(other)". */
constexpr std::size_t reportMaxStages = 8;

/**
 * Ingest the given artifacts and run analysis. Throws ReportError
 * when no input was given or an artifact is malformed.
 */
ReportModel buildReportModel(const ReportInputs &inputs);

/**
 * Build a model from an already-scraped metrics snapshot (live
 * mode). `endpoint` is a provenance label such as
 * "unix:/tmp/gws.sock".
 */
ReportModel buildLiveReportModel(const MetricsData &metrics,
                                 const std::string &endpoint);

/** Render the model as one self-contained HTML document. */
std::string renderReportHtml(const ReportModel &model);

/**
 * renderReportHtml() to a file, written atomically (temp file +
 * rename) so a live-mode reader never sees a torn page. Throws
 * ReportError on write failure.
 */
void writeReportHtml(const ReportModel &model,
                     const std::string &path);

} // namespace report
} // namespace gws

#endif // GWS_REPORT_REPORT_HH
