/**
 * @file
 * Microbenchmark of the serving subsystem: an in-process gws_served
 * on an ephemeral loopback port, one tenant streaming a synthetic
 * workload chunk by chunk with a representative-set query after every
 * chunk (each query recomputes — the memo is invalidated by the new
 * frames). Reports uploads/s and p50/p99 query latency at 1 and 4
 * runtime threads, and writes BENCH_micro_serve.json so the serving
 * perf trajectory can be tracked run over run.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/table.hh"

namespace {

using namespace gws;
using namespace gws::serve;

double
percentileMs(std::vector<double> sorted_ns, double p)
{
    if (sorted_ns.empty())
        return 0.0;
    std::sort(sorted_ns.begin(), sorted_ns.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted_ns.size() - 1));
    return sorted_ns[idx] * 1e-6;
}

struct ServePoint
{
    std::size_t threads = 0;
    double uploadsPerS = 0.0;
    double queryP50Ms = 0.0;
    double queryP99Ms = 0.0;
};

/** One full session lifecycle; returns the measured point. */
ServePoint
runOnce(const Trace &trace, std::size_t threads,
        std::size_t chunkFrames, std::size_t repeats)
{
    RuntimeConfig cfg = runtimeConfig();
    cfg.threads = threads;
    setRuntimeConfig(cfg);

    Server server(ServerConfig{});
    server.start();

    std::vector<double> upload_ns;
    std::vector<double> query_ns;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
        ServeClient client =
            ServeClient::connectTcp(server.boundPort());
        const std::uint64_t id = client.open(trace.name());
        for (std::size_t begin = 0; begin < trace.frameCount();
             begin += chunkFrames) {
            const std::string blob = traceToBlob(
                sliceTrace(trace, begin, begin + chunkFrames));

            const std::uint64_t u0 = runtime_detail::nowNs();
            client.uploadFrames(id, blob);
            upload_ns.push_back(static_cast<double>(
                runtime_detail::nowNs() - u0));

            const std::uint64_t q0 = runtime_detail::nowNs();
            client.query(id);
            query_ns.push_back(static_cast<double>(
                runtime_detail::nowNs() - q0));
        }
        client.close(id);
    }
    server.stop();

    double upload_total_ns = 0.0;
    for (double ns : upload_ns)
        upload_total_ns += ns;

    ServePoint point;
    point.threads = threads;
    point.uploadsPerS = static_cast<double>(upload_ns.size()) /
                        (upload_total_ns * 1e-9);
    point.queryP50Ms = percentileMs(query_ns, 0.50);
    point.queryP99Ms = percentileMs(query_ns, 0.99);
    return point;
}

int
run(int argc, char **argv)
{
    ArgParser args("bench_micro_serve",
                   "serving daemon upload/query microbenchmark");
    addScaleOption(args);
    addThreadsOption(args);
    args.addInt("repeats", 3, "session lifecycles per thread count");
    args.addInt("chunk-frames", 4, "frames per upload chunk");
    args.addString("out", "default",
                   "JSON output path (default = "
                   "results/BENCH_micro_serve.json, empty = skip)");
    if (!args.parse(argc, argv))
        return 0;

    const SuiteScale scale = parseSuiteScale(args.getString("scale"));
    banner("MS", "serving daemon: upload + query latency", scale);

    GameProfile profile = builtinProfile("circuit", scale);
    if (scale == SuiteScale::Ci) {
        profile.segments = 4;
        profile.segmentFramesMin = 6;
        profile.segmentFramesMax = 8;
        profile.drawsPerFrame = 40.0;
    }
    const Trace trace = GameGenerator(profile).generate();
    const std::size_t chunkFrames = std::max<std::int64_t>(
        1, args.getInt("chunk-frames"));
    const std::size_t repeats =
        std::max<std::int64_t>(1, args.getInt("repeats"));
    std::printf("workload: %zu frames, chunked by %zu; "
                "query after every chunk\n",
                trace.frameCount(), chunkFrames);

    const RuntimeConfig base = runtimeConfig();
    std::vector<ServePoint> points;
    for (std::size_t threads : {std::size_t(1), std::size_t(4)})
        points.push_back(
            runOnce(trace, threads, chunkFrames, repeats));
    setRuntimeConfig(base);

    Table table(
        {"threads", "uploads/s", "query p50 ms", "query p99 ms"});
    for (const ServePoint &p : points) {
        table.newRow();
        table.cell(p.threads);
        table.cell(p.uploadsPerS, 1);
        table.cell(p.queryP50Ms, 2);
        table.cell(p.queryP99Ms, 2);
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    const std::string out = args.getString("out");
    if (!out.empty()) {
        BenchJsonWriter json("micro_serve");
        json.setString("scale", toString(scale));
        json.setUint("frames", trace.frameCount());
        json.setUint("chunk_frames", chunkFrames);
        std::string rows = "[";
        for (std::size_t i = 0; i < points.size(); ++i) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"threads\": %zu, \"uploads_per_s\": %.1f, "
                "\"query_p50_ms\": %.3f, \"query_p99_ms\": %.3f}",
                i == 0 ? "" : ", ", points[i].threads,
                points[i].uploadsPerS, points[i].queryP50Ms,
                points[i].queryP99Ms);
            rows += buf;
        }
        rows += "]";
        json.setRaw("points", rows);
        json.write(out == "default" ? "" : out);
    }

    reportRuntime(args);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
