/**
 * @file
 * Figure 3 — cluster outliers. Reproduces the paper's clustering-
 * quality result: clusters with intra-cluster prediction error above
 * 20 % are "outliers"; on average only 3.0 % of clusters are outliers.
 * Also prints the intra-cluster error distribution per game.
 */

#include "bench/bench_common.hh"
#include "core/predictor.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig3_outliers",
                   "cluster outliers > 20% intra error (Fig. 3)");
    addScaleOption(args);
    addThreadsOption(args);
    args.addDouble("radius", 0.95, "leader clustering radius");
    args.addDouble("threshold", defaultOutlierThreshold,
                   "outlier threshold on intra-cluster error");
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F3", "cluster outliers", ctx.scale);

    DrawSubsetConfig cfg;
    cfg.leader.radius = args.getDouble("radius");
    const double threshold = args.getDouble("threshold");
    const GpuSimulator sim(makeGpuPreset("baseline"));

    // Genre of each suite trace, genre axis in first-appearance order.
    const std::vector<GameProfile> profiles = builtinSuite(ctx.scale);
    std::vector<std::string> genres;
    std::vector<std::size_t> genre_of(profiles.size(), 0);
    for (std::size_t g = 0; g < profiles.size(); ++g) {
        std::size_t gi = 0;
        while (gi < genres.size() && genres[gi] != profiles[g].genre)
            ++gi;
        if (gi == genres.size())
            genres.push_back(profiles[g].genre);
        genre_of[g] = gi;
    }
    std::vector<std::uint64_t> genre_clusters(genres.size(), 0);
    std::vector<std::uint64_t> genre_outliers(genres.size(), 0);

    Table table({"game", "clusters", "outliers", "outlier %",
                 "intra err p50 %", "intra err p95 %"});
    std::uint64_t total_clusters = 0, total_outliers = 0;
    for (std::size_t g = 0; g < ctx.suite.size(); ++g) {
        const Trace &t = ctx.suite[g];
        std::uint64_t clusters = 0, outliers = 0;
        std::vector<double> intra;
        for (const auto &cf : ctx.corpus) {
            if (cf.traceIndex != g)
                continue;
            const FrameSubset subset =
                buildFrameSubset(t, t.frame(cf.frameIndex), cfg);
            std::vector<double> costs;
            for (const auto &d : t.frame(cf.frameIndex).draws())
                costs.push_back(sim.simulateDraw(t, d).totalNs);
            const ClusterQuality q = assessClusterQuality(
                subset.clustering, costs, cfg.prediction,
                subset.workUnits, threshold);
            clusters += subset.clustering.k;
            outliers += q.outliers;
            intra.insert(intra.end(), q.intraError.begin(),
                         q.intraError.end());
        }
        table.newRow();
        table.cell(t.name());
        table.cell(clusters);
        table.cell(outliers);
        table.cellPercent(clusters ? static_cast<double>(outliers) /
                                         static_cast<double>(clusters)
                                   : 0.0,
                          2);
        table.cellPercent(percentile(intra, 50.0), 1);
        table.cellPercent(percentile(intra, 95.0), 1);
        total_clusters += clusters;
        total_outliers += outliers;
        genre_clusters[genre_of[g]] += clusters;
        genre_outliers[genre_of[g]] += outliers;
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    // Per-genre outlier contract (paper baseline: ~3 % on corridor
    // shooters; <= 5 % counts as holding at the wider genre set).
    Table genre_table({"genre", "clusters", "outliers", "outlier %",
                       "contract (<=5%)"});
    for (std::size_t gi = 0; gi < genres.size(); ++gi) {
        const double pct =
            genre_clusters[gi]
                ? static_cast<double>(genre_outliers[gi]) /
                      static_cast<double>(genre_clusters[gi])
                : 0.0;
        genre_table.newRow();
        genre_table.cell(genres[gi]);
        genre_table.cell(genre_clusters[gi]);
        genre_table.cell(genre_outliers[gi]);
        genre_table.cellPercent(pct, 2);
        genre_table.cell(
            std::string(pct <= 0.05 ? "meets" : "breaks"));
    }
    std::printf("\ncluster-outlier contract per genre:\n");
    std::fputs(genre_table.renderAscii().c_str(), stdout);

    std::printf("\nmeasured: %.2f%% outlier clusters"
                "   [paper: 3.0%% on average]\n",
                total_clusters ? 100.0 *
                                     static_cast<double>(total_outliers) /
                                     static_cast<double>(total_clusters)
                               : 0.0);

    // Clustering-family comparison: outlier rate of each algorithm
    // over the same corpus (defaults except the shared leader radius).
    const ClusterAlgo families[] = {
        ClusterAlgo::Leader, ClusterAlgo::KMeansBic,
        ClusterAlgo::Agglomerative, ClusterAlgo::GraphPartition};
    Table fam_table({"family", "clusters", "outliers", "outlier %"});
    std::vector<std::uint64_t> fam_clusters, fam_outliers;
    for (ClusterAlgo algo : families) {
        DrawSubsetConfig fam_cfg = cfg;
        fam_cfg.algo = algo;
        std::uint64_t clusters = 0, outliers = 0;
        for (const auto &cf : ctx.corpus) {
            const Trace &t = ctx.suite[cf.traceIndex];
            const FrameSubset subset = buildFrameSubset(
                t, t.frame(cf.frameIndex), fam_cfg);
            std::vector<double> costs;
            for (const auto &d : t.frame(cf.frameIndex).draws())
                costs.push_back(sim.simulateDraw(t, d).totalNs);
            const ClusterQuality q = assessClusterQuality(
                subset.clustering, costs, fam_cfg.prediction,
                subset.workUnits, threshold);
            clusters += subset.clustering.k;
            outliers += q.outliers;
        }
        fam_table.newRow();
        fam_table.cell(std::string(toString(algo)));
        fam_table.cell(clusters);
        fam_table.cell(outliers);
        fam_table.cellPercent(
            clusters ? static_cast<double>(outliers) /
                           static_cast<double>(clusters)
                     : 0.0,
            2);
        fam_clusters.push_back(clusters);
        fam_outliers.push_back(outliers);
    }
    std::printf("\nclustering families (outlier rate):\n");
    std::fputs(fam_table.renderAscii().c_str(), stdout);

    BenchJsonWriter json("fig3_outliers");
    json.setString("scale", toString(ctx.scale));
    json.setUint("clusters", total_clusters);
    json.setUint("outliers", total_outliers);
    json.setDouble("outlier_pct",
                   total_clusters
                       ? 100.0 * static_cast<double>(total_outliers) /
                             static_cast<double>(total_clusters)
                       : 0.0);
    for (std::size_t f = 0; f < fam_clusters.size(); ++f) {
        const std::string key =
            std::string("family_") + toString(families[f]);
        json.setUint(key + "_clusters", fam_clusters[f]);
        json.setDouble(
            key + "_outlier_pct",
            fam_clusters[f]
                ? 100.0 * static_cast<double>(fam_outliers[f]) /
                      static_cast<double>(fam_clusters[f])
                : 0.0);
    }
    for (std::size_t gi = 0; gi < genres.size(); ++gi) {
        const std::string key = std::string("genre_") + genres[gi];
        const double pct =
            genre_clusters[gi]
                ? static_cast<double>(genre_outliers[gi]) /
                      static_cast<double>(genre_clusters[gi])
                : 0.0;
        json.setUint(key + "_clusters", genre_clusters[gi]);
        json.setDouble(key + "_outlier_pct", pct * 100.0);
        json.setBool(key + "_contract", pct <= 0.05);
    }
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
