/**
 * @file
 * Table 2 — workload bottleneck characterization. For each game: the
 * distribution of draw time over limiting pipeline stages on the
 * baseline architecture, the dominant stage, and the DRAM-bound time
 * fraction (the part core-frequency scaling cannot reach). This is
 * the characterization angle of the paper's venue and directly
 * explains the curvature of the Fig. 7 scaling curves.
 */

#include "bench/bench_common.hh"
#include "gpusim/report.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_table2_bottlenecks",
                   "per-game bottleneck distribution (Table 2)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("T2", "bottleneck characterization", ctx.scale);

    const GpuSimulator sim(makeGpuPreset("baseline"));

    // Time-share columns for the interesting stages.
    const Stage shown[] = {Stage::Setup,      Stage::VertexShade,
                           Stage::Raster,     Stage::PixelShade,
                           Stage::Texture,    Stage::Rop,
                           Stage::L2,         Stage::Dram};
    std::vector<std::string> headers{"game"};
    for (Stage s : shown)
        headers.push_back(std::string(toString(s)) + " %");
    headers.push_back("dominant");
    Table table(headers);

    std::string dominant_json = "[";
    for (const auto &t : ctx.suite) {
        const BottleneckProfile p = profileTrace(sim, t);
        table.newRow();
        table.cell(t.name());
        for (Stage s : shown)
            table.cellPercent(p.timeShare(s), 1);
        table.cell(std::string(toString(p.dominant())));
        if (dominant_json.size() > 1)
            dominant_json += ", ";
        dominant_json += "{\"game\": \"" + t.name() +
                         "\", \"dominant\": \"" +
                         std::string(toString(p.dominant())) + "\"}";
    }
    dominant_json += "]";
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\ncolumns are the share of total draw time whose "
                "bottleneck is that stage; the 'dram %%' column is the "
                "memory-bound time core-frequency scaling cannot "
                "improve (see F7's sublinear curves).\n");

    BenchJsonWriter json("table2_bottlenecks");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setRaw("dominant", dominant_json);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
