/**
 * @file
 * google-benchmark microbenchmarks of the clustering hot paths:
 * feature extraction, normalization, leader clustering, and k-means,
 * across realistic per-frame draw counts.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "cluster/kmeans.hh"
#include "cluster/leader.hh"
#include "core/draw_subset.hh"
#include "features/extractor.hh"
#include "synth/generator.hh"

namespace {

using namespace gws;

/** A single-frame trace with roughly `draws` draw calls. */
const Trace &
frameTrace(std::int64_t draws)
{
    static std::map<std::int64_t, Trace> cache;
    auto it = cache.find(draws);
    if (it == cache.end()) {
        GameProfile p = builtinProfile("shock2", SuiteScale::Ci);
        p.segments = 1;
        p.segmentFramesMin = p.segmentFramesMax = 1;
        p.drawsPerFrame = static_cast<double>(draws);
        p.materialsPerLevel =
            std::max<std::uint32_t>(8, static_cast<std::uint32_t>(
                                           draws / 3));
        it = cache.emplace(draws, GameGenerator(p).generate()).first;
    }
    return it->second;
}

std::vector<FeatureVector>
framePoints(const Trace &t)
{
    const FeatureExtractor ex(t);
    const auto raw = ex.extractFrame(t.frame(0));
    return Normalizer::fit(raw).applyAll(raw);
}

void
BM_FeatureExtraction(benchmark::State &state)
{
    const Trace &t = frameTrace(state.range(0));
    const FeatureExtractor ex(t);
    for (auto _ : state)
        benchmark::DoNotOptimize(ex.extractFrame(t.frame(0)));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.frame(0).drawCount()));
}
BENCHMARK(BM_FeatureExtraction)->Arg(120)->Arg(1200);

void
BM_NormalizerFit(benchmark::State &state)
{
    const Trace &t = frameTrace(state.range(0));
    const FeatureExtractor ex(t);
    const auto raw = ex.extractFrame(t.frame(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(Normalizer::fit(raw));
}
BENCHMARK(BM_NormalizerFit)->Arg(1200);

void
BM_LeaderClustering(benchmark::State &state)
{
    const Trace &t = frameTrace(state.range(0));
    const auto points = framePoints(t);
    LeaderConfig cfg;
    for (auto _ : state)
        benchmark::DoNotOptimize(leaderCluster(points, cfg));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_LeaderClustering)->Arg(120)->Arg(1200);

void
BM_KMeans(benchmark::State &state)
{
    const Trace &t = frameTrace(120);
    const auto points = framePoints(t);
    KMeansConfig cfg;
    cfg.k = static_cast<std::size_t>(state.range(0));
    cfg.restarts = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(kmeans(points, cfg));
}
BENCHMARK(BM_KMeans)->Arg(8)->Arg(32);

void
BM_BuildFrameSubset(benchmark::State &state)
{
    const Trace &t = frameTrace(state.range(0));
    const DrawSubsetConfig cfg;
    for (auto _ : state)
        benchmark::DoNotOptimize(buildFrameSubset(t, t.frame(0), cfg));
}
BENCHMARK(BM_BuildFrameSubset)->Arg(120)->Arg(1200);

} // namespace

BENCHMARK_MAIN();
