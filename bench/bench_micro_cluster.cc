/**
 * @file
 * Before/after microbenchmark of the accelerated clustering core.
 *
 * Runs the naive and the bounded/pruned k-means paths in-process on
 * the same points (KMeansPath::Naive vs KMeansPath::Fast), checks the
 * outputs are bit-identical, and reports the single-thread speedup —
 * the acceptance number for the SoA + Hamerly work. Leader clustering
 * and k-means++ seeding are timed alongside, with the bound-skip and
 * norm-reject fractions from the runtime counters. Results land in
 * BENCH_micro_cluster.json so the trajectory is tracked run over run.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.hh"
#include "cluster/kmeans.hh"
#include "cluster/leader.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace {

using namespace gws;

/** n synthetic normalized feature points (mixture of 24 blobs). */
std::vector<FeatureVector>
syntheticPoints(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    constexpr std::size_t blobs = 24;
    std::vector<FeatureVector> centers(blobs);
    for (auto &c : centers)
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            c.at(d) = rng.uniform(-2.0, 2.0);

    std::vector<FeatureVector> points(n);
    for (auto &p : points) {
        const FeatureVector &c =
            centers[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(blobs) - 1))];
        for (std::size_t d = 0; d < numFeatureDims; ++d)
            p.at(d) = c.at(d) + rng.uniform(-0.35, 0.35);
    }
    return points;
}

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t1 - t0)
                   .count()) *
           1e-6;
}

/** Exact equality of two clusterings (the A/B contract). */
bool
identical(const Clustering &a, const Clustering &b)
{
    if (a.k != b.k || a.assignment != b.assignment ||
        a.representatives != b.representatives ||
        a.centroids.size() != b.centroids.size())
        return false;
    for (std::size_t c = 0; c < a.centroids.size(); ++c)
        if (!(a.centroids[c] == b.centroids[c]))
            return false;
    return true;
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_micro_cluster",
                   "naive vs accelerated clustering A/B microbenchmark");
    addThreadsOption(args);
    args.addInt("n", 100000, "number of synthetic feature points");
    args.addInt("k", 64, "k-means cluster count");
    args.addInt("repeats", 3, "timed repetitions per variant");
    args.addString("out", "default",
                   "JSON output path (default = "
                   "results/BENCH_micro_cluster.json, empty = skip)");
    if (!args.parse(argc, argv))
        return 0;

    // The headline A/B runs at one thread so the speedup isolates the
    // algorithmic work (bounds, SoA kernel, pruned seeding) from the
    // parallel runtime; --threads only affects the leader section.
    applyThreadsOption(args);
    const std::size_t n =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, args.getInt("n")));
    const std::size_t k = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("k")));
    const std::size_t repeats =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, args.getInt("repeats")));

    std::printf("=== MC — accelerated clustering core A/B "
                "(n=%zu, k=%zu) ===\n",
                n, k);
    const std::vector<FeatureVector> points = syntheticPoints(n, 2024);

    KMeansConfig cfg;
    cfg.k = k;
    cfg.restarts = 1;
    cfg.maxIterations = 25;

    const RuntimeConfig base = runtimeConfig();
    RuntimeConfig single = base;
    single.threads = 1;
    setRuntimeConfig(single);

    // Warm-up + reference results (also the bit-identity check).
    KMeansConfig naive_cfg = cfg;
    naive_cfg.path = KMeansPath::Naive;
    KMeansConfig fast_cfg = cfg;
    fast_cfg.path = KMeansPath::Fast;
    const Clustering naive_out = kmeans(points, naive_cfg);
    const Clustering fast_out = kmeans(points, fast_cfg);
    const bool bit_identical = identical(naive_out, fast_out);
    if (!bit_identical)
        GWS_WARN("naive and fast k-means outputs differ");

    double naive_ms = 0.0;
    double fast_ms = 0.0;
    resetRuntimeCounters();
    for (std::size_t r = 0; r < repeats; ++r) {
        const double nm =
            wallMs([&] { kmeans(points, naive_cfg); });
        naive_ms = r == 0 ? nm : std::min(naive_ms, nm);
        const double fm = wallMs([&] { kmeans(points, fast_cfg); });
        fast_ms = r == 0 ? fm : std::min(fast_ms, fm);
    }
    const double kmeans_speedup = naive_ms / fast_ms;
    const double bounds_skip_rate =
        runtimeCounters().kmeansBoundsSkipRate();

    // Leader clustering at the paper's operating radius; single run
    // (it is one pass), restored thread config applies.
    setRuntimeConfig(base);
    applyThreadsOption(args);
    resetRuntimeCounters();
    LeaderConfig leader_cfg;
    double leader_ms = 0.0;
    std::size_t leader_k = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
        Clustering lc;
        const double ms =
            wallMs([&] { lc = leaderCluster(points, leader_cfg); });
        leader_ms = r == 0 ? ms : std::min(leader_ms, ms);
        leader_k = lc.k;
    }
    const RuntimeCounters lcnt = runtimeCounters();
    const double norm_reject_rate =
        lcnt.leaderNormRejects + lcnt.leaderDistances > 0
            ? static_cast<double>(lcnt.leaderNormRejects) /
                  static_cast<double>(lcnt.leaderNormRejects +
                                      lcnt.leaderDistances)
            : 0.0;

    Table table({"variant", "wall ms", "speedup"});
    table.newRow();
    table.cell("kmeans naive (1 thread)");
    table.cell(naive_ms, 1);
    table.cell(1.0, 2);
    table.newRow();
    table.cell("kmeans fast (1 thread)");
    table.cell(fast_ms, 1);
    table.cell(kmeans_speedup, 2);
    table.newRow();
    table.cell("leader");
    table.cell(leader_ms, 1);
    table.cell("");
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nbit-identical naive vs fast: %s\n",
                bit_identical ? "yes" : "NO (BUG)");
    std::printf("kmeans bound-skip rate: %.1f%%\n",
                bounds_skip_rate * 100.0);
    std::printf("leader norm-reject rate: %.1f%% (k=%zu)\n",
                norm_reject_rate * 100.0, leader_k);

    const std::string out = args.getString("out");
    if (!out.empty()) {
        BenchJsonWriter json("micro_cluster");
        json.setUint("n", n);
        json.setUint("k", k);
        json.setDouble("kmeans_naive_ms", naive_ms);
        json.setDouble("kmeans_fast_ms", fast_ms);
        json.setDouble("kmeans_speedup", kmeans_speedup);
        json.setBool("kmeans_bit_identical", bit_identical);
        json.setDouble("kmeans_bounds_skip_rate", bounds_skip_rate);
        json.setDouble("leader_ms", leader_ms);
        json.setDouble("leader_norm_reject_rate", norm_reject_rate);
        json.setUint("leader_k", leader_k);
        json.write(out == "default" ? "" : out);
    }

    reportRuntime(args);
    return bit_identical ? 0 : 1;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
