/**
 * @file
 * Microbenchmark of the parallel execution runtime: wall-clock time
 * of GpuSimulator::simulateTrace over the whole suite at 1/2/4/N
 * worker threads, the speedup trajectory, and a bit-identity check of
 * the totals across thread counts (the determinism contract, measured
 * rather than assumed). Results are also written as JSON
 * (BENCH_micro_runtime.json by default) so the perf trajectory can be
 * tracked run over run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"
#include "gpusim/gpu_simulator.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

using namespace gws;

/** Wall ns of one full-suite simulateTrace sweep. */
double
sweepOnceNs(const std::vector<Trace> &suite, const GpuSimulator &sim,
            double *total_ns_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    double total = 0.0;
    for (const Trace &t : suite)
        total += sim.simulateTrace(t).totalNs;
    const auto t1 = std::chrono::steady_clock::now();
    *total_ns_out = total;
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_micro_runtime",
                   "simulateTrace thread-scaling microbenchmark");
    addScaleOption(args);
    addThreadsOption(args);
    args.addInt("repeats", 3, "timed repetitions per thread count");
    args.addString("out", "default",
                   "JSON output path (default = "
                   "results/BENCH_micro_runtime.json, empty = skip)");
    if (!args.parse(argc, argv))
        return 0;

    const SuiteScale scale = parseSuiteScale(args.getString("scale"));
    const std::vector<Trace> suite = generateSuite(scale);
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const std::size_t repeats =
        std::max<std::int64_t>(1, args.getInt("repeats"));
    banner("MR", "parallel runtime: simulateTrace scaling", scale);

    std::uint64_t draws = 0;
    for (const Trace &t : suite)
        draws += t.totalDraws();
    std::printf("suite: %zu traces, %llu draws; host concurrency: %zu\n",
                suite.size(), static_cast<unsigned long long>(draws),
                hardwareThreads());

    // Thread counts to sweep: 1, 2, 4, and the machine width.
    std::vector<std::size_t> sweep{1, 2, 4, hardwareThreads()};
    std::sort(sweep.begin(), sweep.end());
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

    resetRuntimeCounters();
    const RuntimeConfig base = runtimeConfig();
    std::vector<double> best_ms(sweep.size());
    double reference_total = 0.0;
    bool deterministic = true;

    for (std::size_t s = 0; s < sweep.size(); ++s) {
        RuntimeConfig cfg = base;
        cfg.threads = sweep[s];
        setRuntimeConfig(cfg);

        double total = 0.0;
        sweepOnceNs(suite, sim, &total); // warm-up (pool spin-up)
        double best = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            const double ns = sweepOnceNs(suite, sim, &total);
            best = r == 0 ? ns : std::min(best, ns);
        }
        best_ms[s] = best * 1e-6;

        if (s == 0)
            reference_total = total;
        else if (total != reference_total)
            deterministic = false;
    }
    setRuntimeConfig(base);

    Table table({"threads", "wall ms", "speedup"});
    for (std::size_t s = 0; s < sweep.size(); ++s) {
        table.newRow();
        table.cell(sweep[s]);
        table.cell(best_ms[s], 1);
        table.cell(best_ms[0] / best_ms[s], 2);
    }
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\ndeterminism across thread counts: %s\n",
                deterministic ? "bit-identical" : "MISMATCH");
    if (!deterministic)
        GWS_WARN("simulateTrace totals drifted across thread counts");

    const std::string out = args.getString("out");
    if (!out.empty()) {
        BenchJsonWriter json("micro_runtime");
        json.setString("scale", toString(scale));
        json.setUint("hardware_threads", hardwareThreads());
        json.setBool("deterministic", deterministic);
        std::string points = "[";
        for (std::size_t s = 0; s < sweep.size(); ++s) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"threads\": %zu, \"wall_ms\": %.3f, "
                          "\"speedup\": %.3f}",
                          s == 0 ? "" : ", ", sweep[s], best_ms[s],
                          best_ms[0] / best_ms[s]);
            points += buf;
        }
        points += "]";
        json.setRaw("points", points);
        json.write(out == "default" ? "" : out);
    }

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
