/**
 * @file
 * Figure 2 — per-frame prediction error and clustering efficiency per
 * game. Reproduces the paper's headline clustering result: an average
 * performance prediction error per frame of 1.0 % at an average
 * clustering efficiency of 65.8 % across the corpus.
 */

#include "bench/bench_common.hh"
#include "core/predictor.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig2_cluster_error",
                   "per-frame prediction error & efficiency (Fig. 2)");
    addScaleOption(args);
    addThreadsOption(args);
    args.addDouble("radius", 0.95, "leader clustering radius");
    args.addString("prediction", "uniform",
                   "prediction mode: uniform or work_scaled");
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F2", "draw clustering: error vs efficiency", ctx.scale);

    DrawSubsetConfig cfg;
    cfg.leader.radius = args.getDouble("radius");
    if (args.getString("prediction") == "work_scaled")
        cfg.prediction = PredictionMode::WorkScaled;
    else if (args.getString("prediction") != "uniform")
        GWS_FATAL("unknown prediction mode '",
                  args.getString("prediction"), "'");

    const GpuSimulator sim(makeGpuPreset("baseline"));

    // Genre of each suite trace, genre axis in first-appearance order.
    const std::vector<GameProfile> profiles = builtinSuite(ctx.scale);
    std::vector<std::string> genres;
    std::vector<std::size_t> genre_of(profiles.size(), 0);
    for (std::size_t g = 0; g < profiles.size(); ++g) {
        std::size_t gi = 0;
        while (gi < genres.size() && genres[gi] != profiles[g].genre)
            ++gi;
        if (gi == genres.size())
            genres.push_back(profiles[g].genre);
        genre_of[g] = gi;
    }

    std::vector<CorpusPredictionReport> per_game(ctx.suite.size());
    std::vector<CorpusPredictionReport> per_genre(genres.size());
    CorpusPredictionReport overall;
    for (const auto &cf : ctx.corpus) {
        const Trace &t = ctx.suite[cf.traceIndex];
        const FramePredictionReport r = evaluateFramePrediction(
            t, t.frame(cf.frameIndex), sim, cfg);
        accumulate(per_game[cf.traceIndex], r);
        accumulate(per_genre[genre_of[cf.traceIndex]], r);
        accumulate(overall, r);
    }

    Table table({"game", "frames", "draws", "mean err %", "max err %",
                 "efficiency %"});
    for (std::size_t g = 0; g < ctx.suite.size(); ++g) {
        const auto &r = per_game[g];
        table.newRow();
        table.cell(ctx.suite[g].name());
        table.cell(r.frames);
        table.cell(r.draws);
        table.cellPercent(r.meanError, 2);
        table.cellPercent(r.maxError, 2);
        table.cellPercent(r.meanEfficiency, 1);
    }
    table.newRow();
    table.cell(std::string("AVERAGE"));
    table.cell(overall.frames);
    table.cell(overall.draws);
    table.cellPercent(overall.meanError, 2);
    table.cellPercent(overall.maxError, 2);
    table.cellPercent(overall.meanEfficiency, 1);
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nmeasured: %.2f%% error @ %.1f%% efficiency"
                "   [paper: 1.0%% error @ 65.8%% efficiency]\n",
                overall.meanError * 100.0,
                overall.meanEfficiency * 100.0);

    // Per-genre subset-quality contract: the paper's claim (~1 % mean
    // prediction error) was established on corridor-style shooters;
    // this table shows where the wider genre set holds it and where
    // it breaks (a "breaks" verdict is a finding, not a failure).
    Table genre_table({"genre", "frames", "mean err %", "max err %",
                       "efficiency %", "contract (err<=1%)"});
    for (std::size_t gi = 0; gi < genres.size(); ++gi) {
        const auto &r = per_genre[gi];
        genre_table.newRow();
        genre_table.cell(genres[gi]);
        genre_table.cell(r.frames);
        genre_table.cellPercent(r.meanError, 2);
        genre_table.cellPercent(r.maxError, 2);
        genre_table.cellPercent(r.meanEfficiency, 1);
        genre_table.cell(std::string(
            r.meanError <= 0.01 ? "meets" : "breaks"));
    }
    std::printf("\nsubset-quality contract per genre:\n");
    std::fputs(genre_table.renderAscii().c_str(), stdout);

    // Clustering-family comparison: the same corpus evaluated under
    // each algorithm (defaults except the shared leader radius), so
    // the error/efficiency trade-off is comparable across families.
    const ClusterAlgo families[] = {
        ClusterAlgo::Leader, ClusterAlgo::KMeansBic,
        ClusterAlgo::Agglomerative, ClusterAlgo::GraphPartition};
    Table fam_table({"family", "mean err %", "max err %",
                     "efficiency %"});
    std::vector<CorpusPredictionReport> fam_reports;
    for (ClusterAlgo algo : families) {
        DrawSubsetConfig fam_cfg = cfg;
        fam_cfg.algo = algo;
        CorpusPredictionReport agg;
        for (const auto &cf : ctx.corpus) {
            const Trace &t = ctx.suite[cf.traceIndex];
            accumulate(agg, evaluateFramePrediction(
                                t, t.frame(cf.frameIndex), sim,
                                fam_cfg));
        }
        fam_table.newRow();
        fam_table.cell(std::string(toString(algo)));
        fam_table.cellPercent(agg.meanError, 2);
        fam_table.cellPercent(agg.maxError, 2);
        fam_table.cellPercent(agg.meanEfficiency, 1);
        fam_reports.push_back(agg);
    }
    std::printf("\nclustering families (error vs efficiency):\n");
    std::fputs(fam_table.renderAscii().c_str(), stdout);

    BenchJsonWriter json("fig2_cluster_error");
    json.setString("scale", toString(ctx.scale));
    json.setUint("frames", overall.frames);
    json.setUint("draws", overall.draws);
    json.setDouble("mean_error_pct", overall.meanError * 100.0);
    json.setDouble("max_error_pct", overall.maxError * 100.0);
    json.setDouble("mean_efficiency_pct",
                   overall.meanEfficiency * 100.0);
    for (std::size_t f = 0; f < fam_reports.size(); ++f) {
        const std::string key =
            std::string("family_") + toString(families[f]);
        json.setDouble(key + "_mean_error_pct",
                       fam_reports[f].meanError * 100.0);
        json.setDouble(key + "_mean_efficiency_pct",
                       fam_reports[f].meanEfficiency * 100.0);
    }
    for (std::size_t gi = 0; gi < genres.size(); ++gi) {
        const std::string key = std::string("genre_") + genres[gi];
        json.setUint(key + "_frames", per_genre[gi].frames);
        json.setDouble(key + "_mean_error_pct",
                       per_genre[gi].meanError * 100.0);
        json.setDouble(key + "_mean_efficiency_pct",
                       per_genre[gi].meanEfficiency * 100.0);
        json.setBool(key + "_contract",
                     per_genre[gi].meanError <= 0.01);
    }
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
