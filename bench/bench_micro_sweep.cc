/**
 * @file
 * Before/after microbenchmark of the compute-once / retime-many sweep
 * engine.
 *
 * Generates a large synthetic playthrough (>= 50k draws by default),
 * flattens it into a WorkTrace once, then retimes a 16-point core
 * clock sweep through both retimeAll paths at one thread: the naive
 * per-design loops (one GpuSimulator + timeDrawWork walk per config)
 * versus the blocked engine kernel. Checks the two results are
 * bit-identical — totals, per-group costs, per-draw costs, bottleneck
 * histograms — and reports the single-thread speedup, the acceptance
 * number for the sweep-engine work, plus the engine's parallel
 * scaling at the requested thread count. Results land in
 * results/BENCH_micro_sweep.json (shared envelope) so the trajectory
 * is tracked run over run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.hh"
#include "core/sweep.hh"
#include "gpusim/work_trace.hh"
#include "synth/generator.hh"
#include "util/logging.hh"

namespace {

using namespace gws;

/** A playthrough big enough that the sweep dominates (~50k+ draws). */
Trace
sweepTrace(std::size_t target_draws)
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.name = "micro_sweep";
    p.segments = 12;
    p.segmentFramesMin = 28;
    p.segmentFramesMax = 36;
    // Scale the per-frame draw count to hit the target at the
    // profile's ~12 * 32 expected frames.
    const double frames = 12.0 * 32.0;
    p.drawsPerFrame = std::max(
        40.0, static_cast<double>(target_draws) / frames);
    return GameGenerator(p).generate();
}

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t1 - t0)
                   .count()) *
           1e-6;
}

/** Exact equality of two sweep results (the A/B contract). */
bool
identical(const SweepResult &a, const SweepResult &b)
{
    return a.configCount == b.configCount &&
           a.groupCount == b.groupCount && a.drawCount == b.drawCount &&
           a.totalNs == b.totalNs && a.groupNs == b.groupNs &&
           a.bottleneckNs == b.bottleneckNs &&
           a.bottleneckCount == b.bottleneckCount && a.drawNs == b.drawNs;
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_micro_sweep",
                   "naive vs engine sweep retiming A/B microbenchmark");
    addThreadsOption(args);
    args.addInt("draws", 50000, "target draw-call count of the trace");
    args.addInt("configs", 16, "clock points in the sweep");
    args.addInt("repeats", 3, "timed repetitions per variant");
    args.addString("out", "default",
                   "JSON output path (default = "
                   "results/BENCH_micro_sweep.json, empty = skip)");
    if (!args.parse(argc, argv))
        return 0;

    applyThreadsOption(args);
    const std::size_t target_draws =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1000, args.getInt("draws")));
    const std::size_t n_cfg = static_cast<std::size_t>(
        std::max<std::int64_t>(2, args.getInt("configs")));
    const std::size_t repeats =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, args.getInt("repeats")));

    std::printf("=== MS — sweep engine A/B (target draws=%zu, "
                "configs=%zu) ===\n",
                target_draws, n_cfg);

    const Trace trace = sweepTrace(target_draws);
    const GpuSimulator sim(makeGpuPreset("baseline"));

    // Compute-once pass (parallel at the requested thread count).
    double build_ms = 0.0;
    WorkTrace wt;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double ms =
            wallMs([&] { wt = buildWorkTrace(trace, sim); });
        build_ms = r == 0 ? ms : std::min(build_ms, ms);
    }
    std::printf("trace: %zu draws in %zu frames, work trace built in "
                "%.1f ms\n",
                wt.drawCount(), wt.groupCount(), build_ms);

    std::vector<double> scales(n_cfg);
    for (std::size_t i = 0; i < n_cfg; ++i)
        scales[i] = 0.5 +
                    1.5 * static_cast<double>(i) /
                        static_cast<double>(n_cfg - 1);
    const std::vector<GpuConfig> points =
        clockSweepConfigs(makeGpuPreset("baseline"), scales);

    SweepConfig naive_cfg;
    naive_cfg.path = SweepPath::Naive;
    naive_cfg.perDraw = true;
    SweepConfig engine_cfg = naive_cfg;
    engine_cfg.path = SweepPath::Engine;

    // Bit-identity check first (also warms both paths).
    const SweepResult naive_out = retimeAll(wt, points, naive_cfg);
    const SweepResult engine_out = retimeAll(wt, points, engine_cfg);
    const bool bit_identical = identical(naive_out, engine_out);
    if (!bit_identical)
        GWS_WARN("naive and engine sweep outputs differ");

    // Headline A/B at one thread: the speedup isolates the blocked
    // kernel (SoA streaming + hoisted constants) from parallelism.
    const RuntimeConfig base = runtimeConfig();
    RuntimeConfig single = base;
    single.threads = 1;
    setRuntimeConfig(single);

    double naive_ms = 0.0;
    double engine1_ms = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double nm =
            wallMs([&] { retimeAll(wt, points, naive_cfg); });
        naive_ms = r == 0 ? nm : std::min(naive_ms, nm);
        const double em =
            wallMs([&] { retimeAll(wt, points, engine_cfg); });
        engine1_ms = r == 0 ? em : std::min(engine1_ms, em);
    }
    const double single_speedup = naive_ms / engine1_ms;

    // Engine at the requested thread count (parallel scaling).
    setRuntimeConfig(base);
    applyThreadsOption(args);
    resetRuntimeCounters();
    double engine_ms = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double ms =
            wallMs([&] { retimeAll(wt, points, engine_cfg); });
        engine_ms = r == 0 ? ms : std::min(engine_ms, ms);
    }
    const double retime_rate =
        static_cast<double>(wt.drawCount() * n_cfg) /
        (engine_ms * 1e-3) * 1e-6;

    std::printf("\n%-28s %10s %9s\n", "variant", "wall ms", "speedup");
    std::printf("%-28s %10.1f %9.2f\n", "naive (1 thread)", naive_ms,
                1.0);
    std::printf("%-28s %10.1f %9.2f\n", "engine (1 thread)", engine1_ms,
                single_speedup);
    std::printf("%-28s %10.1f %9.2f\n", "engine (parallel)", engine_ms,
                naive_ms / engine_ms);
    std::printf("\nbit-identical naive vs engine: %s\n",
                bit_identical ? "yes" : "NO (BUG)");
    std::printf("engine retime rate: %.1f M draw-configs/s\n",
                retime_rate);

    const std::string out = args.getString("out");
    if (!out.empty()) {
        BenchJsonWriter json("micro_sweep");
        json.setUint("draws", wt.drawCount());
        json.setUint("frames", wt.groupCount());
        json.setUint("configs", n_cfg);
        json.setDouble("work_trace_build_ms", build_ms);
        json.setDouble("naive_ms", naive_ms);
        json.setDouble("engine_single_thread_ms", engine1_ms);
        json.setDouble("engine_parallel_ms", engine_ms);
        json.setDouble("single_thread_speedup", single_speedup);
        json.setDouble("parallel_speedup", naive_ms / engine_ms);
        json.setDouble("retime_mdraw_configs_per_s", retime_rate);
        json.setBool("bit_identical", bit_identical);
        json.write(out == "default" ? "" : out);
    }

    reportRuntime(args);
    return bit_identical ? 0 : 1;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
