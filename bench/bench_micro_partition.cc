/**
 * @file
 * Before/after microbenchmark of cost-balanced sharding on the sweep
 * hot path.
 *
 * Builds a deliberately *skewed* synthetic WorkTrace — the first
 * quarter of the groups carries a configurable multiple (16× by
 * default) of the per-group draw work — and retimes a clock sweep
 * through the same engine kernel under two scheduling strategies:
 *
 *  - naive:    uniform-count chunks, one per thread (the static
 *              equal-group-count sharding a grain of ⌈groups/threads⌉
 *              produces) — the heavy quarter lands in one chunk and
 *              pins one thread while the rest go idle;
 *  - balanced: contiguous equal-cost shards from the multilevel chain
 *              partitioner (partitionTraceShards), two per thread.
 *
 * Scheduling never changes per-group arithmetic and the reductions
 * fold in ascending group order, so the two results must be
 * bit-identical — checked here, exit 1 otherwise. Reports the wall
 * speedup and both shard plans' imbalance (max shard cost / ideal);
 * CI asserts speedup ≥ 1.3 at 4 threads and balanced imbalance
 * ≤ 1.1 from results/BENCH_micro_partition.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.hh"
#include "core/sweep.hh"
#include "gpusim/draw_work_cache.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/work_trace.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace {

using namespace gws;

/**
 * A work trace whose first quarter of groups is `skew`× heavier than
 * the rest. Row contents are deterministic pseudo-random draw work —
 * the values only need to be plausible and nonzero; the *count* skew
 * is what starves the uniform schedule.
 */
WorkTrace
skewedWorkTrace(std::size_t groups, std::size_t base_draws, double skew)
{
    std::vector<std::size_t> sizes(groups);
    const std::size_t heavy = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(base_draws) *
                                    skew));
    for (std::size_t g = 0; g < groups; ++g)
        sizes[g] = g < groups / 4 ? heavy : base_draws;

    WorkTrace wt(capacityConfigHash(makeGpuPreset("baseline")), sizes);
    Rng rng(0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < wt.drawCount(); ++i) {
        DrawWork w;
        w.vertices = rng.uniform(100.0, 5000.0);
        w.primitives = w.vertices / 3.0;
        w.pixels = rng.uniform(1000.0, 200000.0);
        w.vertexFetchBytes = w.vertices * 32.0;
        w.vsWeightedOps = w.vertices * rng.uniform(20.0, 120.0);
        w.psWeightedOps = w.pixels * rng.uniform(10.0, 80.0);
        w.ropPixels = w.pixels;
        w.traffic.texSamples =
            static_cast<std::uint64_t>(w.pixels * 2.0);
        w.traffic.texL2FillBytes = w.pixels * 4.0;
        w.traffic.texDramBytes = w.pixels * 1.5;
        wt.setRow(i, w);
    }
    return wt;
}

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t1 - t0)
                   .count()) *
           1e-6;
}

/** Exact equality of two sweep results (the A/B contract). */
bool
identical(const SweepResult &a, const SweepResult &b)
{
    return a.configCount == b.configCount &&
           a.groupCount == b.groupCount && a.drawCount == b.drawCount &&
           a.totalNs == b.totalNs && a.groupNs == b.groupNs &&
           a.bottleneckNs == b.bottleneckNs &&
           a.bottleneckCount == b.bottleneckCount && a.drawNs == b.drawNs;
}

/** Imbalance of a shard plan over the sweep's per-group costs. */
double
planImbalance(const std::vector<double> &costs,
              const std::vector<std::size_t> &bounds)
{
    double total = 0.0;
    for (double c : costs)
        total += c;
    const std::size_t shards = bounds.size() - 1;
    double max_cost = 0.0;
    for (std::size_t s = 0; s < shards; ++s) {
        double cost = 0.0;
        for (std::size_t g = bounds[s]; g < bounds[s + 1]; ++g)
            cost += costs[g];
        max_cost = std::max(max_cost, cost);
    }
    return max_cost / (total / static_cast<double>(shards));
}

int
run(int argc, char **argv)
{
    ArgParser args("bench_micro_partition",
                   "uniform-grain vs cost-balanced sharding A/B "
                   "microbenchmark");
    addThreadsOption(args);
    args.addInt("groups", 512, "groups (frames) in the trace");
    args.addInt("base-draws", 40, "draws per light group");
    args.addInt("skew", 16,
                "draw multiplier of the heavy first quarter");
    args.addInt("configs", 8, "clock points in the sweep");
    args.addInt("repeats", 3, "timed repetitions per variant");
    args.addString("out", "default",
                   "JSON output path (default = "
                   "results/BENCH_micro_partition.json, empty = skip)");
    if (!args.parse(argc, argv))
        return 0;

    applyThreadsOption(args);
    const std::size_t groups = static_cast<std::size_t>(
        std::max<std::int64_t>(8, args.getInt("groups")));
    const std::size_t base_draws = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("base-draws")));
    const double skew = static_cast<double>(
        std::max<std::int64_t>(1, args.getInt("skew")));
    const std::size_t n_cfg = static_cast<std::size_t>(
        std::max<std::int64_t>(2, args.getInt("configs")));
    const std::size_t repeats = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("repeats")));
    const std::size_t threads = resolvedThreadCount();

    std::printf("=== MP — shard balancing A/B (groups=%zu, skew=%.0fx, "
                "threads=%zu) ===\n",
                groups, skew, threads);

    const WorkTrace wt = skewedWorkTrace(groups, base_draws, skew);
    std::printf("trace: %zu draws in %zu groups (first quarter %.0fx "
                "heavy)\n",
                wt.drawCount(), wt.groupCount(), skew);

    std::vector<double> scales(n_cfg);
    for (std::size_t i = 0; i < n_cfg; ++i)
        scales[i] = 0.5 +
                    1.5 * static_cast<double>(i) /
                        static_cast<double>(n_cfg - 1);
    const std::vector<GpuConfig> points =
        clockSweepConfigs(makeGpuPreset("baseline"), scales);

    // Naive = uniform-count chunks, one per thread: the static
    // sharding the partitioner replaces. Balanced = cost shards.
    SweepConfig naive_cfg;
    naive_cfg.path = SweepPath::Engine;
    naive_cfg.partition = PartitionPath::Naive;
    naive_cfg.groupGrain = (groups + threads - 1) / threads;
    naive_cfg.perDraw = true;
    SweepConfig balanced_cfg = naive_cfg;
    balanced_cfg.partition = PartitionPath::Balanced;

    // Bit-identity check first (also warms both paths).
    const SweepResult naive_out = retimeAll(wt, points, naive_cfg);
    const SweepResult balanced_out = retimeAll(wt, points, balanced_cfg);
    const bool bit_identical = identical(naive_out, balanced_out);
    if (!bit_identical)
        GWS_WARN("naive and balanced sharding outputs differ");

    double naive_ms = 0.0;
    double balanced_ms = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double nm =
            wallMs([&] { retimeAll(wt, points, naive_cfg); });
        naive_ms = r == 0 ? nm : std::min(naive_ms, nm);
        const double bm =
            wallMs([&] { retimeAll(wt, points, balanced_cfg); });
        balanced_ms = r == 0 ? bm : std::min(balanced_ms, bm);
    }
    const double speedup = naive_ms / balanced_ms;

    // Shard plans over the engine's per-group costs (rows + 1), for
    // the imbalance report: naive bounds are the uniform chunks the
    // grain produces.
    std::vector<double> costs(groups);
    for (std::size_t g = 0; g < groups; ++g)
        costs[g] = static_cast<double>(wt.groupEnd(g) -
                                       wt.groupBegin(g)) +
                   1.0;
    const ShardPlan plan = partitionTraceShards(
        costs, defaultShardCount(groups), defaultPartitionCostFn());
    std::vector<std::size_t> naive_bounds;
    for (std::size_t g = 0; g < groups; g += naive_cfg.groupGrain)
        naive_bounds.push_back(g);
    naive_bounds.push_back(groups);
    const double naive_imbalance = planImbalance(costs, naive_bounds);

    std::printf("\n%-28s %10s %9s %11s\n", "variant", "wall ms",
                "speedup", "imbalance");
    std::printf("%-28s %10.1f %9.2f %11.3f\n", "naive (uniform chunks)",
                naive_ms, 1.0, naive_imbalance);
    std::printf("%-28s %10.1f %9.2f %11.3f\n",
                "balanced (cost shards)", balanced_ms, speedup,
                plan.imbalance);
    std::printf("\nbit-identical naive vs balanced: %s\n",
                bit_identical ? "yes" : "NO (BUG)");
    std::printf("balanced plan: %zu shards over %zu groups\n",
                plan.shardCount(), groups);

    const std::string out = args.getString("out");
    if (!out.empty()) {
        BenchJsonWriter json("micro_partition");
        json.setUint("groups", groups);
        json.setUint("draws", wt.drawCount());
        json.setUint("configs", n_cfg);
        json.setUint("threads_used", threads);
        json.setUint("shards", plan.shardCount());
        json.setDouble("skew", skew);
        json.setDouble("naive_ms", naive_ms);
        json.setDouble("balanced_ms", balanced_ms);
        json.setDouble("retime_speedup", speedup);
        json.setDouble("imbalance", plan.imbalance);
        json.setDouble("naive_imbalance", naive_imbalance);
        json.setBool("bit_identical", bit_identical);
        json.write(out == "default" ? "" : out);
    }

    reportRuntime(args);
    return bit_identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
