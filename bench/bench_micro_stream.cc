/**
 * @file
 * Out-of-core streamed-sweep microbenchmark: a multi-million-draw
 * synthetic sweep under a bounded memory budget.
 *
 * Generates a playthrough far larger than the configured budget,
 * streams it through a StreamingWorkTrace (build→spill on the first
 * pass, re-load thereafter), and retimes a 16-point core clock sweep
 * through both per-chunk kernels: the naive per-draw loop (one
 * GpuSimulator + timeDrawWork walk per config per chunk — the
 * pre-engine shape, out of core) versus the blocked engine kernel.
 * Checks the two streamed results are bit-identical, reports the
 * steady-state (load-pass) speedup — the acceptance number for the
 * out-of-core work — plus build-pass cost, chunk-window stats and the
 * peak RSS the whole run needed (the flat-memory claim; also stamped
 * into the shared envelope as peak_rss_bytes). Results land in
 * results/BENCH_micro_stream.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.hh"
#include "core/sweep.hh"
#include "gpusim/streaming_work_trace.hh"
#include "gpusim/work_trace.hh"
#include "obs/mem.hh"
#include "synth/generator.hh"
#include "util/logging.hh"

namespace {

using namespace gws;

/** A playthrough hitting the target draw count (~384 frames). */
Trace
streamTrace(std::size_t target_draws)
{
    GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
    p.name = "micro_stream";
    p.segments = 12;
    p.segmentFramesMin = 28;
    p.segmentFramesMax = 36;
    const double frames = 12.0 * 32.0;
    p.drawsPerFrame = std::max(
        40.0, static_cast<double>(target_draws) / frames);
    return GameGenerator(p).generate();
}

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t1 - t0)
                   .count()) *
           1e-6;
}

/** Exact equality of two sweep results (the A/B contract). */
bool
identical(const SweepResult &a, const SweepResult &b)
{
    return a.configCount == b.configCount &&
           a.groupCount == b.groupCount && a.drawCount == b.drawCount &&
           a.totalNs == b.totalNs && a.groupNs == b.groupNs &&
           a.bottleneckNs == b.bottleneckNs &&
           a.bottleneckCount == b.bottleneckCount && a.drawNs == b.drawNs;
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_micro_stream",
                   "out-of-core streamed sweep microbenchmark "
                   "(naive vs engine per-chunk kernels)");
    addThreadsOption(args);
    args.addInt("draws", 1000000, "target draw-call count of the trace");
    args.addInt("configs", 16, "clock points in the sweep");
    args.addInt("repeats", 2, "timed load-pass repetitions per variant");
    args.addString("out", "default",
                   "JSON output path (default = "
                   "results/BENCH_micro_stream.json, empty = skip)");
    if (!args.parse(argc, argv))
        return 0;

    applyThreadsOption(args);
    const std::size_t target_draws =
        static_cast<std::size_t>(std::max<std::int64_t>(
            10000, args.getInt("draws")));
    const std::size_t n_cfg = static_cast<std::size_t>(
        std::max<std::int64_t>(2, args.getInt("configs")));
    const std::size_t repeats =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, args.getInt("repeats")));

    std::printf("=== MSt — out-of-core streamed sweep (target "
                "draws=%zu, configs=%zu, budget=%zu MiB) ===\n",
                target_draws, n_cfg, memBudgetBytes() >> 20);

    const Trace trace = streamTrace(target_draws);
    const GpuSimulator sim(makeGpuPreset("baseline"));

    StreamingWorkTrace stream(trace, sim);
    const std::size_t full_bytes =
        WorkTrace::residentBytes(stream.drawCount());
    const std::size_t window_bytes =
        WorkTrace::residentBytes(stream.maxChunkRows());
    std::printf("trace: %zu draws in %zu frames; flattened image "
                "%zu MiB vs %zu-chunk window of %zu MiB\n",
                stream.drawCount(), stream.groupCount(),
                full_bytes >> 20, stream.chunkCount(),
                window_bytes >> 20);

    std::vector<double> scales(n_cfg);
    for (std::size_t i = 0; i < n_cfg; ++i)
        scales[i] = 0.5 +
                    1.5 * static_cast<double>(i) /
                        static_cast<double>(n_cfg - 1);
    const std::vector<GpuConfig> points =
        clockSweepConfigs(makeGpuPreset("baseline"), scales);

    // The inner-kernel A/B: retimeAllStreamed picks the per-chunk
    // kernel from SweepConfig::path, so both variants run out of
    // core over the same spill file.
    SweepConfig naive_cfg;
    naive_cfg.path = SweepPath::Naive;
    SweepConfig engine_cfg;
    engine_cfg.path = SweepPath::Engine;

    // First pass fuses build→spill→retime; time it separately — it
    // pays the draw-work computation the load passes reuse.
    SweepResult engine_out;
    const double build_ms = wallMs([&] {
        engine_out = retimeAllStreamed(stream, points, engine_cfg);
    });
    std::printf("build pass (fused build+spill+retime): %.1f ms\n",
                build_ms);

    // Steady state: every later pass re-loads chunks from the spill.
    // End-to-end pass timing first (load + kernel, the production
    // shape), then the kernel-only A/B: during one load pass, time
    // both kernels back to back on each *resident* chunk, so no IO
    // lands inside the timed region — the headline is the *retime*
    // speedup, the same quantity bench_micro_sweep reports in memory,
    // and the working set never exceeds one chunk window.
    double load_ms = 0.0;
    double naive_ms = 0.0;
    double engine_ms = 0.0;
    double naive_retime_ms = 0.0;
    double engine_retime_ms = 0.0;
    SweepResult naive_out;
    for (std::size_t r = 0; r < repeats; ++r) {
        const double lm = wallMs([&] {
            stream.forEachChunk(
                [](std::size_t, std::size_t, const WorkTrace &) {});
        });
        load_ms = r == 0 ? lm : std::min(load_ms, lm);
        const double nm = wallMs(
            [&] { naive_out = retimeAllStreamed(stream, points,
                                                naive_cfg); });
        naive_ms = r == 0 ? nm : std::min(naive_ms, nm);
        const double em = wallMs(
            [&] { engine_out = retimeAllStreamed(stream, points,
                                                 engine_cfg); });
        engine_ms = r == 0 ? em : std::min(engine_ms, em);

        double nk = 0.0;
        double ek = 0.0;
        stream.forEachChunk([&](std::size_t, std::size_t,
                                const WorkTrace &chunk) {
            nk += wallMs([&] { retimeAll(chunk, points, naive_cfg); });
            ek += wallMs([&] { retimeAll(chunk, points, engine_cfg); });
        });
        naive_retime_ms = r == 0 ? nk : std::min(naive_retime_ms, nk);
        engine_retime_ms = r == 0 ? ek : std::min(engine_retime_ms, ek);
    }
    const double speedup = naive_retime_ms / engine_retime_ms;
    const double pass_speedup = naive_ms / engine_ms;
    const bool bit_identical = identical(naive_out, engine_out);
    if (!bit_identical)
        GWS_WARN("streamed naive and engine sweep outputs differ");

    const double retime_rate =
        static_cast<double>(stream.drawCount() * n_cfg) /
        (engine_retime_ms * 1e-3) * 1e-6;
    const std::size_t peak_rss = obs::peakRssBytes();

    std::printf("\n%-28s %10s %10s %9s\n", "variant", "pass ms",
                "retime ms", "speedup");
    std::printf("%-28s %10.1f %10s %9s\n", "chunk load (no kernel)",
                load_ms, "-", "-");
    std::printf("%-28s %10.1f %10.1f %9.2f\n", "naive loop (streamed)",
                naive_ms, naive_retime_ms, 1.0);
    std::printf("%-28s %10.1f %10.1f %9.2f\n", "engine (streamed)",
                engine_ms, engine_retime_ms, speedup);
    std::printf("\nbit-identical naive vs engine: %s\n",
                bit_identical ? "yes" : "NO (BUG)");
    std::printf("engine retime rate: %.1f M draw-configs/s\n",
                retime_rate);
    std::printf("peak RSS: %zu MiB (budget %zu MiB, resident window "
                "%zu MiB)\n",
                peak_rss >> 20, stream.budgetBytes() >> 20,
                window_bytes >> 20);

    const std::string out = args.getString("out");
    if (!out.empty()) {
        BenchJsonWriter json("micro_stream");
        json.setUint("draws", stream.drawCount());
        json.setUint("frames", stream.groupCount());
        json.setUint("configs", n_cfg);
        json.setUint("mem_budget_bytes", stream.budgetBytes());
        json.setUint("chunks", stream.chunkCount());
        json.setUint("max_chunk_rows", stream.maxChunkRows());
        json.setUint("flattened_bytes", full_bytes);
        json.setUint("window_bytes", window_bytes);
        json.setDouble("build_pass_ms", build_ms);
        json.setDouble("load_pass_ms", load_ms);
        json.setDouble("naive_ms", naive_ms);
        json.setDouble("engine_ms", engine_ms);
        json.setDouble("naive_retime_ms", naive_retime_ms);
        json.setDouble("engine_retime_ms", engine_retime_ms);
        json.setDouble("retime_speedup", speedup);
        json.setDouble("pass_speedup", pass_speedup);
        json.setDouble("retime_mdraw_configs_per_s", retime_rate);
        json.setBool("bit_identical", bit_identical);
        json.write(out == "default" ? "" : out);
    }

    reportRuntime(args);
    return bit_identical ? 0 : 1;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
