/**
 * @file
 * Figure 6 — workload subset size. Reproduces the paper's claim that
 * the extracted subsets are "less than one percent of [the] parent
 * workload": per game, the subset's simulated-draw fraction, the
 * simulation-cost reduction, and the subset's total-time prediction
 * error against the fully-simulated parent.
 */

#include "bench/bench_common.hh"
#include "core/subset_pipeline.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig6_subset_size",
                   "subset size vs parent workload (Fig. 6)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F6", "workload subset size", ctx.scale);

    const GpuSimulator sim(makeGpuPreset("baseline"));
    Table table({"game", "parent draws", "subset draws", "fraction %",
                 "speedup x", "phases", "total-time err %"});
    double worst_fraction = 0.0;
    for (const auto &t : ctx.suite) {
        const WorkloadSubset s = buildWorkloadSubset(t, SubsetConfig{});
        const SubsetEvaluation eval = evaluateSubset(t, s, sim);
        table.newRow();
        table.cell(t.name());
        table.cell(static_cast<std::size_t>(s.parentDraws));
        table.cell(static_cast<std::size_t>(s.subsetDraws()));
        table.cellPercent(s.drawFraction(), 3);
        table.cell(s.drawFraction() > 0.0 ? 1.0 / s.drawFraction() : 0.0,
                   0);
        table.cell(static_cast<std::size_t>(s.timeline.phaseCount));
        table.cellPercent(eval.relError(), 2);
        worst_fraction = std::max(worst_fraction, s.drawFraction());
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nworst subset fraction: %.3f%%   [paper: < 1%% of the "
                "parent workload; holds at paper scale]\n",
                worst_fraction * 100.0);

    BenchJsonWriter json("fig6_subset_size");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setDouble("worst_subset_fraction_pct",
                   worst_fraction * 100.0);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
