/**
 * @file
 * Figure 7 — frequency-scaling validation, the paper's headline
 * subset-fidelity result: the performance improvement of the subset
 * under GPU (core) frequency scaling correlates with the parent's at
 * a coefficient of 99.7 %+. Prints both improvement curves per game
 * and the per-game correlation.
 */

#include "bench/bench_common.hh"
#include "core/freq_scaling.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig7_freq_scaling",
                   "subset vs parent under GPU frequency scaling "
                   "(Fig. 7)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F7", "frequency-scaling correlation", ctx.scale);

    const FreqScalingConfig fcfg;
    std::vector<std::string> headers{"game", "series"};
    for (double s : fcfg.scales)
        headers.push_back(formatDouble(s, 1) + "x");
    headers.push_back("corr %");
    Table table(headers);

    double min_corr = 1.0;
    std::vector<std::string> games;
    std::vector<std::vector<double>> subset_improvement;
    for (const auto &t : ctx.suite) {
        const WorkloadSubset subset =
            buildWorkloadSubset(t, SubsetConfig{});
        const FreqScalingResult r = runFreqScaling(
            t, subset, makeGpuPreset("baseline"), fcfg);

        table.newRow();
        table.cell(t.name());
        table.cell(std::string("parent"));
        for (double v : r.parentImprovement)
            table.cell(v, 3);
        table.cell(r.correlation * 100.0, 4);

        table.newRow();
        table.cell(std::string(""));
        table.cell(std::string("subset"));
        for (double v : r.subsetImprovement)
            table.cell(v, 3);
        table.cell(std::string(""));

        min_corr = std::min(min_corr, r.correlation);
        games.push_back(t.name());
        subset_improvement.push_back(r.subsetImprovement);
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nminimum correlation across games: %.4f%%   "
                "[paper: 99.7%%+]\n",
                min_corr * 100.0);

    BenchJsonWriter json("fig7_freq_scaling");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setDouble("min_correlation_pct", min_corr * 100.0);

    // The games × frequency-scale improvement matrix, in the shared
    // results.heatmap shape gws_report renders as a sweep panel.
    std::string hm = "{\"title\": \"subset improvement vs GPU "
                     "frequency scale\", \"rows\": [";
    for (std::size_t g = 0; g < games.size(); ++g)
        hm += (g ? ", \"" : "\"") + obs::jsonEscape(games[g]) + "\"";
    hm += "], \"cols\": [";
    for (std::size_t s = 0; s < fcfg.scales.size(); ++s)
        hm += (s ? ", \"" : "\"") + formatDouble(fcfg.scales[s], 1) +
              "x\"";
    hm += "], \"values\": [";
    for (std::size_t g = 0; g < subset_improvement.size(); ++g) {
        hm += g ? ", [" : "[";
        for (std::size_t s = 0; s < subset_improvement[g].size(); ++s)
            hm += (s ? ", " : "") +
                  formatDouble(subset_improvement[g][s], 4);
        hm += "]";
    }
    hm += "]}";
    json.setRaw("heatmap", hm);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
