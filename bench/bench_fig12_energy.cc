/**
 * @file
 * Figure 12 — DVFS energy study (extension beyond the paper). At each
 * core-clock point the power model prices total energy and the
 * energy-delay product for the fully-simulated parent and for the
 * < 1 % subset. The subset must reproduce the EDP-optimal frequency —
 * the decision a DVFS pathfinding study actually makes.
 */

#include "bench/bench_common.hh"
#include "core/energy_study.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig12_energy",
                   "DVFS energy / EDP study on subsets (extension)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F12", "DVFS energy study (extension)", ctx.scale);

    const DvfsConfig dcfg;
    Table table({"game", "parent EDP-opt", "subset EDP-opt", "agree",
                 "energy corr %", "EDP corr %", "avg W @1.0x",
                 "J/frame @1.0x"});
    bool all_agree = true;
    for (const auto &t : ctx.suite) {
        const WorkloadSubset subset =
            buildWorkloadSubset(t, SubsetConfig{});
        const DvfsResult r =
            runDvfsStudy(t, subset, makeGpuPreset("baseline"), dcfg);
        const std::size_t base_idx = 2; // scale 1.0
        table.newRow();
        table.cell(t.name());
        table.cell(formatDouble(
                       r.points[r.parentOptimal].scale, 1) + "x");
        table.cell(formatDouble(
                       r.points[r.subsetOptimal].scale, 1) + "x");
        table.cell(std::string(
            r.optimumAgrees()
                ? "exact"
                : r.optimumWithinOneStep() ? "within 1 step" : "NO"));
        table.cell(r.energyCorrelation * 100.0, 3);
        table.cell(r.edpCorrelation * 100.0, 3);
        table.cell(r.points[base_idx].parent.averageWatts(), 1);
        table.cell(r.points[base_idx].parent.totalJ() /
                       static_cast<double>(t.frameCount()),
                   4);
        all_agree = all_agree && r.optimumWithinOneStep();
    }
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\nEDP-optimal frequency within one step on all games: %s\n",
                all_agree ? "yes" : "NO");
    std::printf("power model: C_eff=%.0f nF, V(1GHz)=%.2f V + %.2f V/GHz,"
                " leakage %.1f W/V, DRAM %.0f pJ/B, board %.1f W\n",
                dcfg.power.switchedCapacitanceNf, dcfg.power.voltageAt1Ghz,
                dcfg.power.voltageSlopePerGhz, dcfg.power.leakagePerVolt,
                dcfg.power.dramPicojoulesPerByte, dcfg.power.boardWatts);

    BenchJsonWriter json("fig12_energy");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setBool("optimum_within_one_step_all_games", all_agree);
    json.write();

    reportRuntime(args);
    return all_agree ? 0 : 1;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
