/**
 * @file
 * Feature-ablation study: which feature dimensions earn their keep?
 * Re-runs the corpus prediction experiment with each feature dimension
 * zeroed out (leave-one-out) and with the PCA-whitened space on/off,
 * reporting the per-feature impact on prediction error — overall and
 * per workload genre, as a feature x genre heatmap the gws_report
 * dashboard renders. A feature whose removal barely moves the error
 * is redundant for the genres it scores near zero on; a large positive
 * delta marks a feature the subsetting contract depends on.
 */

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/predictor.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_ablation_features",
                   "leave-one-feature-out + PCA on/off prediction-"
                   "error ablation");
    addScaleOption(args);
    addThreadsOption(args);
    args.addDouble("radius", 0.95, "leader clustering radius");
    args.addDouble("pca-frac", 0.98,
                   "variance fraction of the PCA-on configuration");
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("FA", "feature ablation: per-feature error impact",
           ctx.scale);

    const double radius = args.getDouble("radius");
    const double pca_frac = args.getDouble("pca-frac");
    const GpuSimulator sim(makeGpuPreset("baseline"));

    // Genre of each suite trace, and the genre axis in
    // first-appearance order (the heatmap's columns).
    const std::vector<GameProfile> profiles = builtinSuite(ctx.scale);
    GWS_ASSERT(profiles.size() == ctx.suite.size(), "suite mismatch");
    std::vector<std::string> genres;
    std::vector<std::size_t> genre_of(profiles.size(), 0);
    for (std::size_t g = 0; g < profiles.size(); ++g) {
        std::size_t gi = 0;
        while (gi < genres.size() && genres[gi] != profiles[g].genre)
            ++gi;
        if (gi == genres.size())
            genres.push_back(profiles[g].genre);
        genre_of[g] = gi;
    }

    // One corpus pass under a feature-space configuration: overall and
    // per-genre mean prediction error. The draw-cost simulations hit
    // the process-global work memo after the first pass, so the sweep
    // cost is dominated by clustering, not simulation.
    struct PassResult
    {
        CorpusPredictionReport overall;
        std::vector<CorpusPredictionReport> perGenre;
    };
    auto evaluate = [&](const FeatureSpaceConfig &fs) {
        PassResult res;
        res.perGenre.resize(genres.size());
        DrawSubsetConfig cfg;
        cfg.leader.radius = radius;
        cfg.features = fs;
        for (const auto &cf : ctx.corpus) {
            const Trace &t = ctx.suite[cf.traceIndex];
            const FramePredictionReport r = evaluateFramePrediction(
                t, t.frame(cf.frameIndex), sim, cfg);
            accumulate(res.overall, r);
            accumulate(res.perGenre[genre_of[cf.traceIndex]], r);
        }
        return res;
    };

    FeatureSpaceConfig baseline_fs;
    baseline_fs.path = FeaturePath::Naive;
    const PassResult baseline = evaluate(baseline_fs);

    FeatureSpaceConfig pca_fs;
    pca_fs.path = FeaturePath::Pca;
    pca_fs.pcaVariance = pca_frac;
    const PassResult pca = evaluate(pca_fs);

    // Leave-one-out sweep: one pass per dropped dimension.
    std::vector<PassResult> dropped;
    dropped.reserve(numFeatureDims);
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        FeatureSpaceConfig fs;
        fs.path = FeaturePath::Naive;
        fs.dropDim = d;
        dropped.push_back(evaluate(fs));
    }

    // The heatmap: rows are the 15 dimensions plus the PCA-on config,
    // columns the genres, cells the mean-error delta vs the naive
    // baseline in percentage points (positive = removal hurts).
    std::vector<std::string> row_names;
    std::vector<std::vector<double>> deltas;
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        row_names.push_back(
            std::string("drop ") +
            toString(static_cast<FeatureDim>(d)));
        std::vector<double> row;
        for (std::size_t gi = 0; gi < genres.size(); ++gi)
            row.push_back((dropped[d].perGenre[gi].meanError -
                           baseline.perGenre[gi].meanError) *
                          100.0);
        deltas.push_back(std::move(row));
    }
    {
        row_names.push_back("pca on");
        std::vector<double> row;
        for (std::size_t gi = 0; gi < genres.size(); ++gi)
            row.push_back((pca.perGenre[gi].meanError -
                           baseline.perGenre[gi].meanError) *
                          100.0);
        deltas.push_back(std::move(row));
    }

    Table table({"config", "mean err %", "delta pp", "efficiency %"});
    auto add_row = [&](const std::string &name, const PassResult &r) {
        table.newRow();
        table.cell(name);
        table.cellPercent(r.overall.meanError, 2);
        table.cell((r.overall.meanError - baseline.overall.meanError) *
                       100.0,
                   3);
        table.cellPercent(r.overall.meanEfficiency, 1);
    };
    add_row("baseline", baseline);
    add_row("pca on", pca);
    for (std::size_t d = 0; d < numFeatureDims; ++d)
        add_row(row_names[d], dropped[d]);
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nbaseline: %.2f%% error @ %.1f%% efficiency; "
                "pca(%.2f): %.2f%% error @ %.1f%% efficiency\n",
                baseline.overall.meanError * 100.0,
                baseline.overall.meanEfficiency * 100.0, pca_frac,
                pca.overall.meanError * 100.0,
                pca.overall.meanEfficiency * 100.0);

    BenchJsonWriter json("ablation_features");
    json.setString("scale", toString(ctx.scale));
    json.setUint("frames", baseline.overall.frames);
    json.setUint("features", numFeatureDims);
    json.setUint("genres", genres.size());
    json.setDouble("pca_variance_fraction", pca_frac);
    json.setDouble("baseline_mean_error_pct",
                   baseline.overall.meanError * 100.0);
    json.setDouble("baseline_mean_efficiency_pct",
                   baseline.overall.meanEfficiency * 100.0);
    json.setDouble("pca_mean_error_pct",
                   pca.overall.meanError * 100.0);
    json.setDouble("pca_mean_efficiency_pct",
                   pca.overall.meanEfficiency * 100.0);
    for (std::size_t d = 0; d < numFeatureDims; ++d) {
        json.setDouble(
            std::string("drop_") +
                toString(static_cast<FeatureDim>(d)) + "_delta_pct",
            (dropped[d].overall.meanError -
             baseline.overall.meanError) *
                100.0);
    }

    // The feature x genre error-delta matrix in the shared
    // results.heatmap shape gws_report renders.
    std::string hm = "{\"title\": \"prediction-error delta vs "
                     "baseline (pp) by dropped feature and genre\", "
                     "\"rows\": [";
    for (std::size_t r = 0; r < row_names.size(); ++r)
        hm += (r ? ", \"" : "\"") + obs::jsonEscape(row_names[r]) +
              "\"";
    hm += "], \"cols\": [";
    for (std::size_t gi = 0; gi < genres.size(); ++gi)
        hm += (gi ? ", \"" : "\"") + obs::jsonEscape(genres[gi]) +
              "\"";
    hm += "], \"values\": [";
    for (std::size_t r = 0; r < deltas.size(); ++r) {
        hm += r ? ", [" : "[";
        for (std::size_t c = 0; c < deltas[r].size(); ++c)
            hm += (c ? ", " : "") + formatDouble(deltas[r][c], 4);
        hm += "]";
    }
    hm += "]}";
    json.setRaw("heatmap", hm);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
