/**
 * @file
 * Figure 10 — frames-per-phase ablation (extension beyond the paper).
 * The paper keeps one representative interval per phase; this study
 * sweeps how many representative frames are sampled per phase and
 * shows the trade: subset size grows linearly while the total-time
 * prediction error drops as intra-phase variation (camera swings)
 * averages out. Frequency-scaling correlation stays ~100 % at every
 * point, confirming the paper's choice of 1 is enough for scaling
 * studies even though absolute-time studies benefit from more.
 */

#include <utility>

#include "bench/bench_common.hh"
#include "core/freq_scaling.hh"
#include "core/subset_pipeline.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig10_frames_per_phase",
                   "frames-per-phase ablation (extension, Fig. 10)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F10", "frames-per-phase ablation (extension)", ctx.scale);

    const GpuSimulator sim(makeGpuPreset("baseline"));
    Table table({"frames/intvl", "occurrences", "mean subset %",
                 "mean total err %", "max total err %",
                 "min freq corr %"});
    // Two sweeps: more frames from one interval (intra-interval
    // averaging) vs more occurrences of the phase (inter-occurrence
    // averaging). At full scale only the latter attacks the residual.
    const std::pair<std::uint32_t, std::uint32_t> sweeps[] = {
        {1, 1}, {2, 1}, {4, 1}, {8, 1}, {1, 2}, {1, 4}, {2, 4}};
    std::string points_json = "[";
    for (const auto &[fpp, opp] : sweeps) {
        SubsetConfig cfg;
        cfg.framesPerPhase = fpp;
        cfg.occurrencesPerPhase = opp;
        double frac_sum = 0.0, err_sum = 0.0, err_max = 0.0;
        double min_corr = 1.0;
        for (const auto &t : ctx.suite) {
            const WorkloadSubset s = buildWorkloadSubset(t, cfg);
            const SubsetEvaluation eval = evaluateSubset(t, s, sim);
            frac_sum += s.drawFraction();
            err_sum += eval.relError();
            err_max = std::max(err_max, eval.relError());
            const FreqScalingResult r = runFreqScaling(
                t, s, makeGpuPreset("baseline"), FreqScalingConfig{});
            min_corr = std::min(min_corr, r.correlation);
        }
        const double n = static_cast<double>(ctx.suite.size());
        table.newRow();
        table.cell(static_cast<std::size_t>(fpp));
        table.cell(static_cast<std::size_t>(opp));
        table.cellPercent(frac_sum / n, 3);
        table.cellPercent(err_sum / n, 2);
        table.cellPercent(err_max, 2);
        table.cell(min_corr * 100.0, 4);
        char row[160];
        std::snprintf(row, sizeof(row),
                      "%s{\"frames_per_phase\": %u, "
                      "\"occurrences_per_phase\": %u, "
                      "\"mean_err_pct\": %.3f, \"min_corr_pct\": %.4f}",
                      points_json.size() > 1 ? ", " : "", fpp, opp,
                      100.0 * err_sum / n, min_corr * 100.0);
        points_json += row;
    }
    points_json += "]";
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\nthe paper's configuration is one frame from one "
                "occurrence; both axes are accuracy/size knobs this "
                "reproduction adds.\n");

    BenchJsonWriter json("fig10_frames_per_phase");
    json.setString("scale", toString(ctx.scale));
    json.setRaw("points", points_json);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
