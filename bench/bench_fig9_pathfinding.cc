/**
 * @file
 * Figure 9 — the pathfinding use case from the paper's title: five
 * candidate GPU architectures ranked on the full workload versus the
 * subset. Reports per-game ranking preservation and speedup
 * correlation, and the aggregate across the suite.
 */

#include "bench/bench_common.hh"
#include "core/pathfinding.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig9_pathfinding",
                   "architecture ranking on subsets (Fig. 9)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F9", "pathfinding: design-point ranking", ctx.scale);

    std::vector<GpuConfig> designs;
    for (const auto &name : gpuPresetNames())
        designs.push_back(makeGpuPreset(name));

    Table table({"game", "ranking preserved", "speedup corr %",
                 "rank corr %", "fastest (full)", "fastest (subset)"});
    bool all_preserved = true;
    double min_corr = 1.0;
    for (const auto &t : ctx.suite) {
        const WorkloadSubset subset =
            buildWorkloadSubset(t, SubsetConfig{});
        const PathfindingResult r = runPathfinding(t, subset, designs);

        std::string fastest_full, fastest_subset;
        for (std::size_t i = 0; i < designs.size(); ++i) {
            if (r.parentRanking[i] == 0)
                fastest_full = r.points[i].name;
            if (r.subsetRanking[i] == 0)
                fastest_subset = r.points[i].name;
        }
        table.newRow();
        table.cell(t.name());
        table.cell(std::string(r.rankingPreserved ? "yes" : "NO"));
        table.cell(r.speedupCorrelation * 100.0, 3);
        table.cell(r.rankCorrelation * 100.0, 3);
        table.cell(fastest_full);
        table.cell(fastest_subset);
        all_preserved = all_preserved && r.rankingPreserved;
        min_corr = std::min(min_corr, r.speedupCorrelation);
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nall rankings preserved: %s; minimum speedup "
                "correlation: %.3f%%\n",
                all_preserved ? "yes" : "NO", min_corr * 100.0);
    std::printf("design points: baseline, wide (2x cores), fastmem "
                "(1.6x memory clock), bigcache (4x L2), mobile\n");

    BenchJsonWriter json("fig9_pathfinding");
    json.setString("scale", toString(ctx.scale));
    json.setUint("designs", designs.size());
    json.setBool("all_rankings_preserved", all_preserved);
    json.setDouble("min_speedup_correlation_pct", min_corr * 100.0);
    json.write();

    reportRuntime(args);
    return all_preserved ? 0 : 1;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
