/**
 * @file
 * Figure 5 — phase timelines. Reproduces the paper's phase-detection
 * result: characterizing frame intervals by shader vectors and
 * grouping them by equality reveals repetitive behavior ("phases
 * exist in each game in the BioShock series"). Prints the timeline
 * strip, the phase count, the representative fraction per game, and
 * the sensitivity to the interval-length knob.
 */

#include "bench/bench_common.hh"
#include "phase/phase_detect.hh"
#include "util/table.hh"

namespace {

char
phaseLetter(std::uint32_t p)
{
    return p < 26 ? static_cast<char>('A' + p) : '?';
}

} // namespace

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig5_phases",
                   "shader-vector phase detection (Fig. 5)");
    addScaleOption(args);
    addThreadsOption(args);
    args.addInt("interval", 10, "frames per interval");
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F5", "phase timelines", ctx.scale);

    PhaseConfig cfg;
    cfg.intervalFrames = static_cast<std::uint32_t>(args.getInt("interval"));

    Table table({"game", "intervals", "phases", "recurring",
                 "rep fraction %", "timeline"});
    std::size_t total_phases = 0, total_intervals = 0, recurring = 0;
    for (const auto &t : ctx.suite) {
        const PhaseTimeline tl = detectPhases(t, cfg);
        total_phases += tl.phaseCount;
        total_intervals += tl.intervals.size();
        recurring += tl.hasRecurringPhase() ? 1 : 0;
        std::string strip;
        for (const auto &iv : tl.intervals)
            strip.push_back(phaseLetter(iv.phaseId));
        if (strip.size() > 48)
            strip = strip.substr(0, 48) + "...";
        table.newRow();
        table.cell(t.name());
        table.cell(tl.intervals.size());
        table.cell(static_cast<std::size_t>(tl.phaseCount));
        table.cell(std::string(tl.hasRecurringPhase() ? "yes" : "no"));
        table.cellPercent(tl.representativeFraction(), 1);
        table.cell(strip);
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    // Interval-length sensitivity on the three BioShock analogues.
    std::printf("\ninterval-length sensitivity (phases / intervals):\n");
    Table sens({"game", "ivl=5", "ivl=10", "ivl=20", "ivl=40"});
    for (std::size_t g = 0; g < 3; ++g) {
        const Trace &t = ctx.suite[g];
        sens.newRow();
        sens.cell(t.name());
        for (std::uint32_t ivl : {5u, 10u, 20u, 40u}) {
            PhaseConfig c;
            c.intervalFrames = ivl;
            const PhaseTimeline tl = detectPhases(t, c);
            sens.cell(std::to_string(tl.phaseCount) + "/" +
                      std::to_string(tl.intervals.size()));
        }
    }
    std::fputs(sens.renderAscii().c_str(), stdout);
    std::printf("\npaper: phases exist in each BioShock-series game "
                "(recurring = yes for shock1/shock2/shockinf)\n");

    BenchJsonWriter json("fig5_phases");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setUint("total_phases", total_phases);
    json.setUint("total_intervals", total_intervals);
    json.setUint("games_with_recurring_phase", recurring);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
