/**
 * @file
 * Figure 11 — temporal clustering (extension beyond the paper).
 * Clusters persist across frames instead of being rebuilt per frame,
 * exploiting frame-to-frame coherence: representatives are simulated
 * once per playthrough. Compares per-frame clustering efficiency
 * (the paper's ~65 %) against temporal efficiency (>90 %) at matched
 * prediction error, and shows how cluster discovery decays over the
 * first frames.
 */

#include "bench/bench_common.hh"
#include "core/predictor.hh"
#include "core/temporal_subset.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig11_temporal",
                   "temporal cross-frame clustering (extension)");
    addScaleOption(args);
    addThreadsOption(args);
    args.addInt("max-frames", 0,
                "cap on processed frames per game (0 = all at ci, "
                "60 at paper scale)");
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F11", "temporal clustering (extension)", ctx.scale);

    TemporalSubsetConfig tcfg;
    tcfg.maxFrames = static_cast<std::uint32_t>(args.getInt("max-frames"));
    if (tcfg.maxFrames == 0 && ctx.scale == SuiteScale::Paper)
        tcfg.maxFrames = 60; // O(draws x clusters) matching cost

    const GpuSimulator sim(makeGpuPreset("baseline"));
    const DrawSubsetConfig per_frame_cfg;

    Table table({"game", "frames", "per-frame eff %", "temporal eff %",
                 "per-frame err %", "temporal err %",
                 "new clusters f0 / f1 / last"});
    double temporal_eff_sum = 0.0, temporal_err_sum = 0.0;
    for (const auto &t : ctx.suite) {
        const TemporalReport tr = runTemporalSubsetting(t, sim, tcfg);
        temporal_eff_sum += tr.efficiency();
        temporal_err_sum += tr.meanFrameError();

        // Per-frame baseline over the same frames.
        CorpusPredictionReport pf;
        for (std::uint64_t fi = 0; fi < tr.frames; ++fi)
            accumulate(pf, evaluateFramePrediction(
                               t, t.frame(fi), sim, per_frame_cfg));

        table.newRow();
        table.cell(t.name());
        table.cell(static_cast<std::size_t>(tr.frames));
        table.cellPercent(pf.meanEfficiency, 1);
        table.cellPercent(tr.efficiency(), 1);
        table.cellPercent(pf.meanError, 2);
        table.cellPercent(tr.meanFrameError(), 2);
        table.cell(std::to_string(tr.newClustersPerFrame.front()) +
                   " / " +
                   std::to_string(tr.newClustersPerFrame.size() > 1
                                      ? tr.newClustersPerFrame[1]
                                      : 0) +
                   " / " +
                   std::to_string(tr.newClustersPerFrame.back()));
    }
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\nclusters persist across frames, so representatives "
                "are simulated once per playthrough — the paper's "
                "per-frame efficiency is the floor, not the ceiling.\n");

    const double games = static_cast<double>(ctx.suite.size());
    BenchJsonWriter json("fig11_temporal");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setDouble("mean_temporal_efficiency_pct",
                   100.0 * temporal_eff_sum / games);
    json.setDouble("mean_temporal_err_pct",
                   100.0 * temporal_err_sum / games);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
