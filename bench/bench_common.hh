/**
 * @file
 * Shared plumbing for the experiment harnesses: every bench accepts
 * --scale=ci|paper (ci by default so running every bench binary in a
 * loop stays fast; paper regenerates the full 717-frame corpus) and
 * prints the rows/series of the paper table or figure it reproduces.
 */

#ifndef GWS_BENCH_BENCH_COMMON_HH
#define GWS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "synth/suite.hh"
#include "util/args.hh"

namespace gws {

/** Suite + corpus regenerated for one bench run. */
struct BenchContext
{
    /** The selected scale. */
    SuiteScale scale = SuiteScale::Ci;

    /** Playthrough traces of the six built-in games. */
    std::vector<Trace> suite;

    /** The sampled characterization corpus. */
    std::vector<CorpusFrame> corpus;
};

/** Register the standard --scale option. */
inline void
addScaleOption(ArgParser &args)
{
    args.addString("scale", "ci",
                   "suite scale: ci (fast) or paper (717-frame corpus)");
}

/** Build the context for the parsed options. */
inline BenchContext
makeBenchContext(const ArgParser &args)
{
    BenchContext ctx;
    ctx.scale = parseSuiteScale(args.getString("scale"));
    ctx.suite = generateSuite(ctx.scale);
    ctx.corpus = sampleCorpus(ctx.suite, defaultCorpusFrames(ctx.scale));
    return ctx;
}

/** Print the bench banner. */
inline void
banner(const std::string &id, const std::string &what, SuiteScale scale)
{
    std::printf("=== %s — %s (scale: %s) ===\n", id.c_str(), what.c_str(),
                toString(scale));
}

} // namespace gws

#endif // GWS_BENCH_BENCH_COMMON_HH
