/**
 * @file
 * Shared plumbing for the experiment harnesses: every bench accepts
 * --scale=ci|paper (ci by default so running every bench binary in a
 * loop stays fast; paper regenerates the full 717-frame corpus) and
 * prints the rows/series of the paper table or figure it reproduces.
 *
 * Observability: --trace-out=<file> records a Chrome trace (load it in
 * https://ui.perfetto.dev), --metrics-out=<file> exports the metrics
 * registry, and --runtime-stats prints the counter report plus the
 * span self-time rollup. Results JSON goes through BenchJsonWriter so
 * every BENCH_<name>.json shares one envelope (bench name, git
 * revision, thread count, wall time).
 */

#ifndef GWS_BENCH_BENCH_COMMON_HH
#define GWS_BENCH_BENCH_COMMON_HH

#include <sys/stat.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "features/pca.hh"
#include "gpusim/streaming_work_trace.hh"
#include "obs/obs.hh"
#include "partition/shards.hh"
#include "report/report.hh"
#include "runtime/runtime.hh"
#include "synth/suite.hh"
#include "util/args.hh"
#include "util/env.hh"
#include "util/error.hh"
#include "util/logging.hh"

#ifndef GWS_GIT_DESCRIBE
#define GWS_GIT_DESCRIBE "unknown"
#endif

namespace gws {

/** Suite + corpus regenerated for one bench run. */
struct BenchContext
{
    /** The selected scale. */
    SuiteScale scale = SuiteScale::Ci;

    /** Playthrough traces of the built-in game suite. */
    std::vector<Trace> suite;

    /** The sampled characterization corpus. */
    std::vector<CorpusFrame> corpus;
};

/**
 * Steady-clock origin of this bench process, pinned on first call
 * (addThreadsOption() calls it at startup). The envelope's wall time
 * is measured from here.
 */
inline std::uint64_t
benchProcessT0()
{
    static const std::uint64_t t0 = runtime_detail::nowNs();
    return t0;
}

/** Register the standard --scale option. */
inline void
addScaleOption(ArgParser &args)
{
    args.addString("scale", "ci",
                   "suite scale: ci (fast) or paper (717-frame corpus)");
}

/**
 * Register the standard --threads option (0 = hardware concurrency),
 * defaulting from the GWS_THREADS environment variable, plus the
 * --runtime-stats flag. Applied by makeBenchContext() /
 * applyThreadsOption().
 */
inline void
addThreadsOption(ArgParser &args)
{
    benchProcessT0(); // pin the envelope's wall-time origin early
    const std::int64_t def =
        static_cast<std::int64_t>(envSize("GWS_THREADS", 0));
    args.addInt("threads", def,
                "worker threads, 0 = hardware concurrency "
                "(default from GWS_THREADS)");
    args.addFlag("runtime-stats",
                 "print parallel-runtime counters before exit");
    args.addString("trace-out", "",
                   "record a Chrome/Perfetto trace to this file");
    args.addString("metrics-out", "",
                   "export the metrics registry as JSON to this file");
    args.addString("metrics-text-out", "",
                   "export the metrics registry as Prometheus text "
                   "exposition to this file");
    args.addString("report-out", "",
                   "write a self-contained HTML dashboard built from "
                   "the --trace-out / --metrics-out artifacts and "
                   "results/ to this file");
    args.addInt("mem-budget", 0,
                "out-of-core memory budget in MiB for streamed sweeps "
                "(0 = GWS_MEM_BUDGET or the 256 MiB default)");
    args.addString("partition-cost", "",
                   "shard-balancing cost function: balanced, "
                   "critical_path, greedy, or minmax (default from "
                   "GWS_PARTITION)");
    args.addString("pca", "",
                   "cluster in the PCA-whitened feature space keeping "
                   "this cumulative-variance fraction in (0, 1]; "
                   "'off' forces the raw space (default from GWS_PCA)");
}

/**
 * Apply a parsed --threads value to the global runtime config and arm
 * the --trace-out / --metrics-out exports (flushed by reportRuntime()
 * or atexit). Recording starts here, so everything the bench does
 * after option parsing lands in the trace.
 */
inline void
applyThreadsOption(const ArgParser &args)
{
    RuntimeConfig cfg = runtimeConfig();
    const std::int64_t t = args.getInt("threads");
    cfg.threads = t <= 0 ? 0 : static_cast<std::size_t>(t);
    setRuntimeConfig(cfg);
    obs::metricsRegistry().gauge("gws.threads")
        .set(static_cast<double>(resolvedThreadCount()));

    const std::string trace_out = args.getString("trace-out");
    if (!trace_out.empty()) {
        obs::setTraceOutputPath(trace_out);
        if (!obs::traceEnabled())
            obs::traceBegin();
    }
    const std::string metrics_out = args.getString("metrics-out");
    if (!metrics_out.empty())
        obs::setMetricsOutputPath(metrics_out);
    const std::string metrics_text_out =
        args.getString("metrics-text-out");
    if (!metrics_text_out.empty())
        obs::setMetricsTextOutputPath(metrics_text_out);

    const std::int64_t budget_mib = args.getInt("mem-budget");
    if (budget_mib > 0)
        setMemBudgetBytes(static_cast<std::size_t>(budget_mib) << 20);

    const std::string partition_cost = args.getString("partition-cost");
    if (!partition_cost.empty()) {
        PartitionCostFn fn = PartitionCostFn::Balanced;
        if (!parsePartitionCostFn(partition_cost, &fn))
            GWS_FATAL("--partition-cost wants balanced / critical_path "
                      "/ greedy / minmax, got '", partition_cost, "'");
        setDefaultPartitionCostFn(fn);
    }

    const std::string pca = args.getString("pca");
    if (!pca.empty()) {
        FeatureSpaceConfig fs;
        if (pca == "off" || pca == "0") {
            fs.path = FeaturePath::Naive;
        } else {
            char *end = nullptr;
            const double frac = std::strtod(pca.c_str(), &end);
            if (end == pca.c_str() || *end != '\0' || !(frac > 0.0) ||
                frac > 1.0)
                GWS_FATAL("--pca wants a variance fraction in (0, 1] "
                          "or 'off', got '", pca, "'");
            fs.path = FeaturePath::Pca;
            fs.pcaVariance = frac;
        }
        setDefaultFeatureSpace(fs);
    }
}

/**
 * Print the runtime counter report and span rollup if --runtime-stats
 * was given, then flush any armed --trace-out / --metrics-out files.
 */
inline void
reportRuntime(const ArgParser &args)
{
    if (args.getFlag("runtime-stats")) {
        std::fputs(runtimeCountersReport().c_str(), stdout);
        std::fputs(obs::traceRollupReport().c_str(), stdout);
    }
    obs::flushObservability();

    // --report-out feeds the artifacts just flushed (plus any
    // results/ envelopes, the bench's own included) into the
    // dashboard, so one flag turns a bench run into a shareable page.
    const std::string report_out = args.getString("report-out");
    if (!report_out.empty()) {
        report::ReportInputs inputs;
        inputs.tracePath = args.getString("trace-out");
        inputs.metricsPath = args.getString("metrics-out");
        struct stat st;
        if (::stat("results", &st) == 0 && S_ISDIR(st.st_mode))
            inputs.benchDir = "results";
        try {
            report::writeReportHtml(
                report::buildReportModel(inputs), report_out);
            std::printf("wrote %s\n", report_out.c_str());
        } catch (const IoError &e) {
            GWS_WARN("cannot write report: ", e.what());
        }
    }
}

/**
 * Build the context for the parsed options. Requires both
 * addScaleOption() and addThreadsOption() to have been registered —
 * every bench takes --threads.
 */
inline BenchContext
makeBenchContext(const ArgParser &args)
{
    applyThreadsOption(args);
    BenchContext ctx;
    ctx.scale = parseSuiteScale(args.getString("scale"));
    ctx.suite = generateSuite(ctx.scale);
    ctx.corpus = sampleCorpus(ctx.suite, defaultCorpusFrames(ctx.scale));
    return ctx;
}

namespace bench_detail {

/**
 * SIGINT/SIGTERM handler: flush any armed --trace-out /
 * --metrics-out / --metrics-text-out exports, then die by the
 * default disposition so the shell still sees a signal death.
 * flushObservability() is not async-signal-safe in the strict sense;
 * this is a best-effort last write on an interactive ^C, and the
 * worst case is a torn output file that was about to be dropped
 * entirely anyway.
 */
inline void
flushOnSignal(int sig)
{
    std::signal(sig, SIG_DFL);
    obs::flushObservability();
    std::raise(sig);
}

/** Install flushOnSignal for SIGINT and SIGTERM. */
inline void
installSignalFlush()
{
    std::signal(SIGINT, flushOnSignal);
    std::signal(SIGTERM, flushOnSignal);
}

} // namespace bench_detail

/**
 * Run a bench/example main body, turning typed input-boundary errors
 * (IoError and its TraceIoError / SubsetIoError subclasses) and any
 * other exception into a clean nonzero exit instead of a
 * std::terminate with an opaque abort. Armed --trace-out /
 * --metrics-out exports are flushed on the way out — including on
 * SIGINT/SIGTERM, so an interrupted run still leaves its
 * observability artifacts behind (long-lived daemons may override
 * the handlers with their own graceful-drain logic).
 *
 * Usage:
 *   namespace { int run(int argc, char **argv) { ... } }
 *   int main(int argc, char **argv)
 *   { return gws::runGuardedMain(run, argc, argv); }
 */
template <typename Fn>
inline int
runGuardedMain(Fn body, int argc, char **argv)
{
    bench_detail::installSignalFlush();
    try {
        return body(argc, argv);
    } catch (const IoError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "unexpected error: %s\n", e.what());
    }
    obs::flushObservability();
    return 1;
}

/** Print the bench banner. */
inline void
banner(const std::string &id, const std::string &what, SuiteScale scale)
{
    std::printf("=== %s — %s (scale: %s) ===\n", id.c_str(), what.c_str(),
                toString(scale));
}

/**
 * The one shared results writer: every bench_* binary funnels its
 * headline numbers through this so all BENCH_<name>.json files carry
 * the same envelope —
 *
 *   { "schema": "gws.bench.v1", "bench": ..., "git": ...,
 *     "threads": N, "wall_ms": X, "peak_rss_bytes": R,
 *     "results": { <bench fields> } }
 *
 * — and trajectories are comparable across benches and revisions.
 * Fields keep insertion order. write() defaults to
 * results/BENCH_<name>.json and creates results/ if needed.
 */
class BenchJsonWriter
{
  public:
    /** Start an envelope for bench `name` (e.g. "micro_sweep"). */
    explicit BenchJsonWriter(std::string name) : benchName(std::move(name))
    {
    }

    /** Add an integer result field. */
    void
    setInt(const std::string &key, std::int64_t v)
    {
        fields.emplace_back(key, std::to_string(v));
    }

    /** Add an unsigned result field. */
    void
    setUint(const std::string &key, std::uint64_t v)
    {
        fields.emplace_back(key, std::to_string(v));
    }

    /** Add a floating-point result field (3 decimals). */
    void
    setDouble(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", v);
        fields.emplace_back(key, buf);
    }

    /** Add a boolean result field. */
    void
    setBool(const std::string &key, bool v)
    {
        fields.emplace_back(key, v ? "true" : "false");
    }

    /** Add a string result field (escaped). */
    void
    setString(const std::string &key, const std::string &v)
    {
        fields.emplace_back(key, "\"" + obs::jsonEscape(v) + "\"");
    }

    /** Add a pre-rendered JSON value (arrays / nested objects). */
    void
    setRaw(const std::string &key, const std::string &json)
    {
        fields.emplace_back(key, json);
    }

    /**
     * Write the envelope. Empty path = results/BENCH_<name>.json
     * relative to the working directory. Returns false (after a
     * warning) when the file cannot be created.
     */
    bool
    write(const std::string &path = "") const
    {
        std::string out = path;
        if (out.empty()) {
            // Best-effort create of the default output directory.
            ::mkdir("results", 0755);
            out = "results/BENCH_" + benchName + ".json";
        }
        FILE *fp = std::fopen(out.c_str(), "w");
        if (fp == nullptr) {
            GWS_WARN("cannot write bench JSON to ", out);
            return false;
        }
        const double wall_ms =
            static_cast<double>(runtime_detail::nowNs() -
                                benchProcessT0()) *
            1e-6;
        std::fprintf(fp,
                     "{\n  \"schema\": \"gws.bench.v1\",\n"
                     "  \"bench\": \"%s\",\n  \"git\": \"%s\",\n"
                     "  \"threads\": %zu,\n  \"wall_ms\": %.3f,\n"
                     "  \"peak_rss_bytes\": %zu,\n"
                     "  \"results\": {",
                     obs::jsonEscape(benchName).c_str(),
                     obs::jsonEscape(GWS_GIT_DESCRIBE).c_str(),
                     resolvedThreadCount(), wall_ms,
                     obs::peakRssBytes());
        bool first = true;
        for (const auto &[key, value] : fields) {
            std::fprintf(fp, "%s\n    \"%s\": %s", first ? "" : ",",
                         obs::jsonEscape(key).c_str(), value.c_str());
            first = false;
        }
        std::fprintf(fp, "\n  }\n}\n");
        std::fclose(fp);
        std::printf("wrote %s\n", out.c_str());
        return true;
    }

  private:
    std::string benchName;

    /** (key, pre-rendered JSON value) in insertion order. */
    std::vector<std::pair<std::string, std::string>> fields;
};

} // namespace gws

#endif // GWS_BENCH_BENCH_COMMON_HH
