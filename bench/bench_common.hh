/**
 * @file
 * Shared plumbing for the experiment harnesses: every bench accepts
 * --scale=ci|paper (ci by default so running every bench binary in a
 * loop stays fast; paper regenerates the full 717-frame corpus) and
 * prints the rows/series of the paper table or figure it reproduces.
 */

#ifndef GWS_BENCH_BENCH_COMMON_HH
#define GWS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/runtime.hh"
#include "synth/suite.hh"
#include "util/args.hh"

namespace gws {

/** Suite + corpus regenerated for one bench run. */
struct BenchContext
{
    /** The selected scale. */
    SuiteScale scale = SuiteScale::Ci;

    /** Playthrough traces of the six built-in games. */
    std::vector<Trace> suite;

    /** The sampled characterization corpus. */
    std::vector<CorpusFrame> corpus;
};

/** Register the standard --scale option. */
inline void
addScaleOption(ArgParser &args)
{
    args.addString("scale", "ci",
                   "suite scale: ci (fast) or paper (717-frame corpus)");
}

/**
 * Register the standard --threads option (0 = hardware concurrency),
 * defaulting from the GWS_THREADS environment variable, plus the
 * --runtime-stats flag. Applied by makeBenchContext() /
 * applyThreadsOption().
 */
inline void
addThreadsOption(ArgParser &args)
{
    std::int64_t def = 0;
    if (const char *env = std::getenv("GWS_THREADS"))
        def = std::atoll(env);
    args.addInt("threads", def,
                "worker threads, 0 = hardware concurrency "
                "(default from GWS_THREADS)");
    args.addFlag("runtime-stats",
                 "print parallel-runtime counters before exit");
}

/** Apply a parsed --threads value to the global runtime config. */
inline void
applyThreadsOption(const ArgParser &args)
{
    RuntimeConfig cfg = runtimeConfig();
    const std::int64_t t = args.getInt("threads");
    cfg.threads = t <= 0 ? 0 : static_cast<std::size_t>(t);
    setRuntimeConfig(cfg);
}

/** Print the runtime counter report if --runtime-stats was given. */
inline void
reportRuntime(const ArgParser &args)
{
    if (args.getFlag("runtime-stats"))
        std::fputs(runtimeCountersReport().c_str(), stdout);
}

/**
 * Build the context for the parsed options. Requires both
 * addScaleOption() and addThreadsOption() to have been registered —
 * every bench takes --threads.
 */
inline BenchContext
makeBenchContext(const ArgParser &args)
{
    applyThreadsOption(args);
    BenchContext ctx;
    ctx.scale = parseSuiteScale(args.getString("scale"));
    ctx.suite = generateSuite(ctx.scale);
    ctx.corpus = sampleCorpus(ctx.suite, defaultCorpusFrames(ctx.scale));
    return ctx;
}

/** Print the bench banner. */
inline void
banner(const std::string &id, const std::string &what, SuiteScale scale)
{
    std::printf("=== %s — %s (scale: %s) ===\n", id.c_str(), what.c_str(),
                toString(scale));
}

} // namespace gws

#endif // GWS_BENCH_BENCH_COMMON_HH
