/**
 * @file
 * Figure 13 — phase-method comparison (ablation). The paper proposes
 * shader-vector equality where prior art (SimPoint) would cluster
 * interval feature centroids. Both are run through the identical
 * subsetting pipeline: phase counts, subset sizes, total-time error,
 * and frequency-scaling correlation, side by side. This quantifies
 * the paper's methodological choice against the established
 * technique it adapts.
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "core/freq_scaling.hh"
#include "core/subset_pipeline.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig13_phase_methods",
                   "shader vectors vs SimPoint-style feature clustering "
                   "(ablation)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F13", "phase-method ablation", ctx.scale);

    const GpuSimulator sim(makeGpuPreset("baseline"));
    Table table({"game", "method", "phases", "subset %", "total err %",
                 "freq corr %"});
    double err_sum[2] = {0.0, 0.0};
    double min_corr[2] = {1.0, 1.0};
    for (const auto &t : ctx.suite) {
        for (PhaseMethod method :
             {PhaseMethod::ShaderVector, PhaseMethod::FeatureCluster}) {
            SubsetConfig cfg;
            cfg.phaseMethod = method;
            const WorkloadSubset s = buildWorkloadSubset(t, cfg);
            const SubsetEvaluation eval = evaluateSubset(t, s, sim);
            const FreqScalingResult fr = runFreqScaling(
                t, s, makeGpuPreset("baseline"), FreqScalingConfig{});
            table.newRow();
            table.cell(method == PhaseMethod::ShaderVector ? t.name()
                                                           : "");
            table.cell(std::string(toString(method)));
            table.cell(static_cast<std::size_t>(s.timeline.phaseCount));
            table.cellPercent(s.drawFraction(), 3);
            table.cellPercent(eval.relError(), 2);
            table.cell(fr.correlation * 100.0, 4);
            const int m = method == PhaseMethod::ShaderVector ? 0 : 1;
            err_sum[m] += eval.relError();
            min_corr[m] = std::min(min_corr[m], fr.correlation);
        }
    }
    std::fputs(table.renderAscii().c_str(), stdout);
    std::printf("\nboth methods feed the same pipeline; shader vectors "
                "need no feature extraction or clustering over the "
                "whole playthrough and match phases exactly at level "
                "granularity, which is the paper's point.\n");

    const double games = static_cast<double>(ctx.suite.size());
    BenchJsonWriter json("fig13_phase_methods");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setDouble("shader_vector_mean_err_pct",
                   100.0 * err_sum[0] / games);
    json.setDouble("feature_cluster_mean_err_pct",
                   100.0 * err_sum[1] / games);
    json.setDouble("shader_vector_min_corr_pct", min_corr[0] * 100.0);
    json.setDouble("feature_cluster_min_corr_pct", min_corr[1] * 100.0);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
