/**
 * @file
 * Figure 4 — the error/efficiency trade-off as the clustering radius
 * sweeps. This reconstructs the methodology's operating-point choice:
 * the paper reports one point (1.0 % error @ 65.8 % efficiency); the
 * sweep shows the curve that point lives on, plus the same trade-off
 * under work-scaled prediction (ablation) and the BIC-driven k-means
 * alternative.
 *
 * Ground-truth per-draw costs and features are computed once per
 * corpus frame and shared across all sweep points, so the sweep costs
 * one simulation pass regardless of how many configurations it tries.
 */

#include <cmath>

#include "bench/bench_common.hh"
#include "cluster/leader.hh"
#include "core/draw_subset.hh"
#include "core/predictor.hh"
#include "features/extractor.hh"
#include "gpusim/gpu_simulator.hh"
#include "util/table.hh"

namespace {

using namespace gws;

struct SweepPoint
{
    double radius;
    PredictionMode mode;
    double errSum = 0.0;
    double errMax = 0.0;
    double effSum = 0.0;
    std::uint64_t clusters = 0;
    std::uint64_t outliers = 0;
};

} // namespace

namespace {

int
run(int argc, char **argv)
{
    ArgParser args("bench_fig4_radius_sweep",
                   "error/efficiency vs clustering radius (Fig. 4)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F4", "radius sweep & prediction-mode ablation", ctx.scale);

    const GpuSimulator sim(makeGpuPreset("baseline"));

    std::vector<SweepPoint> points;
    for (double radius : {0.4, 0.6, 0.8, 0.95, 1.1, 1.4, 1.8}) {
        points.push_back({radius, PredictionMode::Uniform});
        points.push_back({radius, PredictionMode::WorkScaled});
    }

    std::size_t frames = 0;
    for (const auto &cf : ctx.corpus) {
        const Trace &t = ctx.suite[cf.traceIndex];
        const Frame &frame = t.frame(cf.frameIndex);
        ++frames;

        // One simulation + feature pass, shared by every sweep point.
        std::vector<double> costs, work_units;
        double actual = sim.config().frameOverheadUs * 1e3;
        for (const auto &d : frame.draws()) {
            costs.push_back(sim.simulateDraw(t, d).totalNs);
            work_units.push_back(drawWorkUnits(t, d));
            actual += costs.back();
        }
        const FeatureExtractor ex(t);
        const auto raw = ex.extractFrame(frame);
        const auto normed = Normalizer::fit(raw).applyAll(raw);

        for (auto &pt : points) {
            LeaderConfig lc;
            lc.radius = pt.radius;
            const Clustering c = leaderCluster(normed, lc);
            std::vector<double> rep_costs(c.k);
            for (std::size_t cl = 0; cl < c.k; ++cl)
                rep_costs[cl] = costs[c.representatives[cl]];
            const auto predicted =
                predictItemCosts(c, rep_costs, pt.mode, work_units);
            double total = sim.config().frameOverheadUs * 1e3;
            for (double ns : predicted)
                total += ns;
            const double err = std::fabs(total - actual) / actual;
            pt.errSum += err;
            pt.errMax = std::max(pt.errMax, err);
            pt.effSum += c.efficiency();
            const ClusterQuality q = assessClusterQuality(
                c, costs, pt.mode, work_units);
            pt.clusters += c.k;
            pt.outliers += q.outliers;
        }
    }

    Table table({"radius", "mode", "mean err %", "max err %",
                 "efficiency %", "outlier %"});
    for (const auto &pt : points) {
        table.newRow();
        table.cell(pt.radius, 2);
        table.cell(std::string(toString(pt.mode)));
        table.cellPercent(pt.errSum / static_cast<double>(frames), 2);
        table.cellPercent(pt.errMax, 2);
        table.cellPercent(pt.effSum / static_cast<double>(frames), 1);
        table.cellPercent(pt.clusters
                              ? static_cast<double>(pt.outliers) /
                                    static_cast<double>(pt.clusters)
                              : 0.0,
                          2);
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    // BIC-selected k-means reference point (slower; evaluated on a
    // handful of corpus frames, with the k sweep sized to the frame).
    CorpusPredictionReport agg;
    const std::size_t sampled = std::min<std::size_t>(
        ctx.corpus.size(), ctx.scale == SuiteScale::Paper ? 6 : 12);
    for (std::size_t i = 0; i < sampled; ++i) {
        const auto &cf = ctx.corpus[i * ctx.corpus.size() / sampled];
        const Trace &t = ctx.suite[cf.traceIndex];
        const std::size_t draws = t.frame(cf.frameIndex).drawCount();
        DrawSubsetConfig bic;
        bic.algo = ClusterAlgo::KMeansBic;
        bic.kselect.maxK = std::max<std::size_t>(12, draws / 2);
        bic.kselect.step =
            std::max<std::size_t>(1, bic.kselect.maxK / 12);
        bic.kselect.base.restarts = 1;
        bic.kselect.base.maxIterations = 15;
        accumulate(agg, evaluateFramePrediction(
                            t, t.frame(cf.frameIndex), sim, bic));
    }
    std::printf("\nkmeans+BIC reference (%zu frames): %.2f%% error @ "
                "%.1f%% efficiency\n",
                sampled, agg.meanError * 100.0,
                agg.meanEfficiency * 100.0);
    std::printf("paper operating point: 1.0%% error @ 65.8%% "
                "efficiency\n");

    BenchJsonWriter json("fig4_radius_sweep");
    json.setString("scale", toString(ctx.scale));
    json.setUint("bic_reference_frames", sampled);
    json.setDouble("bic_mean_error_pct", agg.meanError * 100.0);
    json.setDouble("bic_mean_efficiency_pct",
                   agg.meanEfficiency * 100.0);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
