/**
 * @file
 * Table 8 — baseline comparison (ablation implied by the paper's
 * methodology choice): at the simulation budget the clustering picked
 * per frame, how well do similarity-blind selectors — random, uniform
 * (every n/k-th), and stratified-by-shader sampling — predict frame
 * time? Clustering's per-frame error should be an order of magnitude
 * lower.
 */

#include <cmath>
#include <map>

#include "bench/bench_common.hh"
#include "core/baselines.hh"
#include "core/predictor.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_table8_baselines",
                   "clustering vs sampling baselines (Table 8)");
    addScaleOption(args);
    addThreadsOption(args);
    args.addInt("seeds", 4, "random repetitions per frame");
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("T8", "equal-budget baseline comparison", ctx.scale);

    const GpuSimulator sim(makeGpuPreset("baseline"));
    const auto seeds = static_cast<std::uint64_t>(args.getInt("seeds"));

    std::map<std::size_t, double> cluster_err;
    std::map<std::size_t, std::map<BaselineKind, double>> base_err;
    std::map<std::size_t, std::size_t> frames;

    for (const auto &cf : ctx.corpus) {
        const Trace &t = ctx.suite[cf.traceIndex];
        const Frame &f = t.frame(cf.frameIndex);
        const FramePredictionReport rep =
            evaluateFramePrediction(t, f, sim, DrawSubsetConfig{});
        cluster_err[cf.traceIndex] += rep.relError();
        ++frames[cf.traceIndex];
        const double actual = rep.actualNs;
        for (BaselineKind kind : allBaselineKinds()) {
            double err = 0.0;
            for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
                const BaselineSample s = selectBaselineSample(
                    f, rep.drawsSimulated, kind,
                    seed * 7919 + cf.frameIndex);
                err += std::fabs(predictFrameFromSample(t, f, sim, s) -
                                 actual) /
                       actual;
            }
            base_err[cf.traceIndex][kind] += err /
                                             static_cast<double>(seeds);
        }
    }

    Table table({"game", "clustering err %", "random err %",
                 "uniform err %", "stratified err %"});
    double c_total = 0.0;
    std::map<BaselineKind, double> b_total;
    std::size_t n_total = 0;
    for (std::size_t g = 0; g < ctx.suite.size(); ++g) {
        const double n = static_cast<double>(frames[g]);
        table.newRow();
        table.cell(ctx.suite[g].name());
        table.cellPercent(cluster_err[g] / n, 2);
        for (BaselineKind kind : allBaselineKinds())
            table.cellPercent(base_err[g][kind] / n, 2);
        c_total += cluster_err[g];
        for (BaselineKind kind : allBaselineKinds())
            b_total[kind] += base_err[g][kind];
        n_total += frames[g];
    }
    table.newRow();
    table.cell(std::string("AVERAGE"));
    table.cellPercent(c_total / static_cast<double>(n_total), 2);
    for (BaselineKind kind : allBaselineKinds())
        table.cellPercent(b_total[kind] / static_cast<double>(n_total),
                          2);
    std::fputs(table.renderAscii().c_str(), stdout);

    std::printf("\nclustering on micro-architecture-independent features "
                "beats every similarity-blind selector at equal budget.\n");

    BenchJsonWriter json("table8_baselines");
    json.setString("scale", toString(ctx.scale));
    json.setUint("frames", n_total);
    json.setDouble("clustering_mean_err_pct",
                   100.0 * c_total / static_cast<double>(n_total));
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
