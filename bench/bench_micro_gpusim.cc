/**
 * @file
 * google-benchmark microbenchmarks of the GPU performance model:
 * cache accesses, the texture-stream sampler, per-draw simulation,
 * the work/time split used by frequency sweeps, and whole-frame
 * simulation.
 */

#include <benchmark/benchmark.h>

#include "gpusim/access_stream.hh"
#include "gpusim/gpu_simulator.hh"
#include "synth/generator.hh"
#include "util/rng.hh"

namespace {

using namespace gws;

const Trace &
simTrace()
{
    static const Trace t = [] {
        GameProfile p = builtinProfile("shock1", SuiteScale::Ci);
        p.segments = 1;
        p.segmentFramesMin = p.segmentFramesMax = 2;
        p.drawsPerFrame = 120.0;
        return GameGenerator(p).generate();
    }();
    return t;
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{16 * 1024, 64, 4});
    Rng rng(1);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.uniformInt(0, 1 << 20));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i]));
        i = (i + 1) % addrs.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_TextureStream(benchmark::State &state)
{
    StreamParams p;
    p.totalAccesses = 100000;
    p.footprintBytes = 4 << 20;
    p.locality = 0.85;
    p.seed = 42;
    const CacheConfig l1{16 * 1024, 64, 4}, l2{1 << 20, 64, 16};
    for (auto _ : state)
        benchmark::DoNotOptimize(runTextureStream(
            p, l1, l2, static_cast<std::uint64_t>(state.range(0))));
}
BENCHMARK(BM_TextureStream)->Arg(128)->Arg(512)->Arg(2048);

void
BM_SimulateDraw(benchmark::State &state)
{
    const Trace &t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    const auto &draws = t.frame(0).draws();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.simulateDraw(t, draws[i]));
        i = (i + 1) % draws.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulateDraw);

void
BM_TimeDrawWork(benchmark::State &state)
{
    // The frequency-sweep fast path: re-pricing precomputed work.
    const Trace &t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    std::vector<DrawWork> works;
    for (const auto &d : t.frame(0).draws())
        works.push_back(sim.computeDrawWork(t, d));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.timeDrawWork(works[i]));
        i = (i + 1) % works.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeDrawWork);

void
BM_SimulateFrame(benchmark::State &state)
{
    const Trace &t = simTrace();
    const GpuSimulator sim(makeGpuPreset("baseline"));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.simulateFrame(t, t.frame(0)));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.frame(0).drawCount()));
}
BENCHMARK(BM_SimulateFrame);

} // namespace

BENCHMARK_MAIN();
