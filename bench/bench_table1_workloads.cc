/**
 * @file
 * Table 1 — workload inventory. Reproduces the paper's corpus
 * characterization: per-game frames, draw calls, draws/frame, shader
 * counts, texture footprints, and the corpus totals ("717 frames
 * encompassing 828K draw-calls" at paper scale).
 */

#include "bench/bench_common.hh"
#include "trace/trace_stats.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_table1_workloads",
                   "workload inventory (paper Table 1)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("T1", "workload inventory", ctx.scale);

    Table table({"game", "frames", "draws", "draws/frame", "pixel shaders",
                 "shaders/frame", "textures", "overdraw"});
    std::uint64_t total_frames = 0, total_draws = 0;
    for (const auto &trace : ctx.suite) {
        const TraceStats s = computeTraceStats(trace);
        table.newRow();
        table.cell(trace.name());
        table.cell(s.frames);
        table.cell(humanCount(static_cast<double>(s.draws)));
        table.cell(s.drawsPerFrame, 0);
        table.cell(s.pixelShaderPrograms);
        table.cell(s.pixelShadersPerFrame, 1);
        table.cell(humanBytes(static_cast<double>(s.textureBytes)));
        table.cell(s.meanOverdraw, 2);
        total_frames += s.frames;
        total_draws += s.draws;
    }
    std::fputs(table.renderAscii().c_str(), stdout);

    const std::uint64_t corpus_draws = corpusDraws(ctx.suite, ctx.corpus);
    std::printf("\nplaythroughs:     %llu frames, %s draws\n",
                static_cast<unsigned long long>(total_frames),
                humanCount(static_cast<double>(total_draws)).c_str());
    std::printf("corpus (sampled): %zu frames, %s draws"
                "   [paper: 717 frames, 828K draws]\n",
                ctx.corpus.size(),
                humanCount(static_cast<double>(corpus_draws)).c_str());

    BenchJsonWriter json("table1_workloads");
    json.setString("scale", toString(ctx.scale));
    json.setUint("games", ctx.suite.size());
    json.setUint("frames", total_frames);
    json.setUint("draws", total_draws);
    json.setUint("corpus_frames", ctx.corpus.size());
    json.setUint("corpus_draws", corpus_draws);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
