/**
 * @file
 * Figure 14 — suite-level subsetting (extension). The paper's opening
 * motivation is an explosion in the *number* of workloads; this study
 * clusters whole frames across all six games and keeps one
 * representative frame per cluster, reporting the compression, the
 * cross-game redundancy it finds, and the accuracy of corpus-level
 * cost prediction on every design point.
 */

#include "bench/bench_common.hh"
#include "core/suite_subset.hh"
#include "util/table.hh"

#include <cmath>

namespace {

int
run(int argc, char **argv)
{
    using namespace gws;

    ArgParser args("bench_fig14_suite_subset",
                   "cross-workload frame subsetting (extension)");
    addScaleOption(args);
    addThreadsOption(args);
    if (!args.parse(argc, argv))
        return 0;
    const BenchContext ctx = makeBenchContext(args);
    banner("F14", "suite-level subsetting (extension)", ctx.scale);

    Table sweep({"radius", "rep frames", "fraction %",
                 "cross-game clusters", "corpus err % (baseline)"});
    const GpuSimulator base_sim(makeGpuPreset("baseline"));
    const double actual_base =
        measureCorpusNs(ctx.suite, ctx.corpus, base_sim);

    SuiteSubset chosen;
    for (double radius : {0.5, 1.0, 1.5, 2.0}) {
        SuiteSubsetConfig cfg;
        cfg.radius = radius;
        const SuiteSubset s = buildSuiteSubset(ctx.suite, ctx.corpus,
                                               cfg);
        const double predicted =
            predictCorpusNs(ctx.suite, s, base_sim);
        sweep.newRow();
        sweep.cell(radius, 2);
        sweep.cell(s.frames.size());
        sweep.cellPercent(s.frameFraction(), 1);
        sweep.cell(s.crossGameClusters);
        sweep.cellPercent(
            std::fabs(predicted - actual_base) / actual_base, 2);
        if (radius == 1.0)
            chosen = s;
    }
    std::fputs(sweep.renderAscii().c_str(), stdout);

    // Per-design-point accuracy at the chosen radius.
    std::printf("\ncorpus-cost prediction across design points "
                "(radius = 1.0, %zu of %zu frames):\n",
                chosen.frames.size(), chosen.corpusFrames);
    Table designs({"design", "actual (ms)", "predicted (ms)", "err %"});
    for (const auto &name : gpuPresetNames()) {
        const GpuSimulator sim(makeGpuPreset(name));
        const double actual = measureCorpusNs(ctx.suite, ctx.corpus, sim);
        const double predicted =
            predictCorpusNs(ctx.suite, chosen, sim);
        designs.newRow();
        designs.cell(name);
        designs.cell(actual * 1e-6, 2);
        designs.cell(predicted * 1e-6, 2);
        designs.cellPercent(std::fabs(predicted - actual) / actual, 2);
    }
    std::fputs(designs.renderAscii().c_str(), stdout);
    std::printf("\ncross-game clusters show the corpus redundancy the "
                "paper's motivation implies: different games render "
                "frames that one representative can stand for.\n");

    BenchJsonWriter json("fig14_suite_subset");
    json.setString("scale", toString(ctx.scale));
    json.setUint("subset_frames", chosen.frames.size());
    json.setUint("corpus_frames", chosen.corpusFrames);
    json.setUint("cross_game_clusters", chosen.crossGameClusters);
    json.write();

    reportRuntime(args);
    return 0;
}
} // namespace

int
main(int argc, char **argv)
{
    return gws::runGuardedMain(run, argc, argv);
}
